#include "triage/minimizer.hpp"

#include <algorithm>
#include <thread>

#include "core/mst.hpp"
#include "riscv/decode.hpp"
#include "riscv/encode.hpp"

namespace specure::triage {

namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

bool has_signature(const std::vector<core::VulnReport>& reports,
                   const std::string& signature) {
  for (const core::VulnReport& r : reports) {
    if (r.signature == signature) return true;
  }
  return false;
}

/// Remove code[[begin, begin+count)] from a program.
riscv::Program without_chunk(const riscv::Program& p, std::size_t begin,
                             std::size_t count) {
  riscv::Program out = p;
  out.code.erase(out.code.begin() + static_cast<std::ptrdiff_t>(begin),
                 out.code.begin() + static_cast<std::ptrdiff_t>(begin + count));
  return out;
}

}  // namespace

struct Minimizer::ProbeWorker {
  sim::Simulator sim;
  core::VulnerabilityDetector detector;

  ProbeWorker(const sim::CoreConfig& core, const core::OfflineResult& offline,
              const core::DetectorOptions& options)
      : sim(core),
        detector(offline.ifg, offline.pdlc, sim.signal_db(), options) {}
};

Minimizer::Minimizer(const sim::CoreConfig& core,
                     const core::OfflineResult& offline,
                     const core::DetectorOptions& detector, std::size_t jobs) {
  if (jobs == 0) jobs = std::thread::hardware_concurrency();
  if (jobs == 0) jobs = 1;
  workers_.reserve(jobs);
  for (std::size_t w = 0; w < jobs; ++w) {
    workers_.push_back(std::make_unique<ProbeWorker>(core, offline, detector));
  }
  pool_ = std::make_unique<util::ThreadPool>(jobs);
}

Minimizer::~Minimizer() = default;

std::vector<core::VulnReport> Minimizer::probe(
    const riscv::Program& program) const {
  return probe_full(program).reports;
}

Minimizer::ProbeOutcome Minimizer::probe_full(
    const riscv::Program& program) const {
  const ProbeWorker& w = *workers_.front();
  sim::RunResult run = w.sim.run(program);
  const auto windows = core::extract_mst(run.trace);
  auto reports = w.detector.analyze(run, windows);
  return {std::move(run), std::move(reports)};
}

std::size_t Minimizer::best_candidate(
    const std::vector<riscv::Program>& candidates, const std::string& signature,
    std::size_t* probes) {
  if (candidates.empty()) return kNpos;
  *probes += candidates.size();
  std::vector<char> reproduced(candidates.size(), 0);
  pool_->parallel_for(
      candidates.size(), [&](std::size_t task, std::size_t ctx) {
        const ProbeWorker& w = *workers_[ctx];
        const sim::RunResult run = w.sim.run(candidates[task]);
        const auto windows = core::extract_mst(run.trace);
        reproduced[task] =
            has_signature(w.detector.analyze(run, windows), signature);
      });
  // Lowest index wins — the probe order above is irrelevant, so the
  // accepted reduction is identical for any worker count.
  for (std::size_t i = 0; i < reproduced.size(); ++i) {
    if (reproduced[i]) return i;
  }
  return kNpos;
}

MinimizeResult Minimizer::minimize(const riscv::Program& program,
                                   const std::string& signature) {
  MinimizeResult result;
  result.program = program;
  result.signature = signature;
  result.original_len = program.code.size();
  result.minimized_len = program.code.size();

  if (!has_signature(probe(program), signature)) {
    return result;  // reproduced stays false
  }
  result.reproduced = true;
  riscv::Program current = program;

  // Phase 1 (and phase 4): ddmin over instruction chunks. For each chunk
  // size, keep removing the lowest-index chunk whose removal still
  // reproduces; halve the chunk once no removal at this size survives.
  const auto ddmin = [&] {
    std::size_t chunk = std::max<std::size_t>(1, current.code.size() / 2);
    while (chunk >= 1) {
      for (;;) {
        if (current.code.size() <= 1) return;
        std::vector<riscv::Program> candidates;
        for (std::size_t begin = 0; begin < current.code.size();
             begin += chunk) {
          const std::size_t count =
              std::min(chunk, current.code.size() - begin);
          if (count == current.code.size()) continue;  // keep non-empty
          candidates.push_back(without_chunk(current, begin, count));
        }
        const std::size_t won =
            best_candidate(candidates, signature, &result.probes);
        if (won == kNpos) break;
        current = candidates[won];
      }
      if (chunk == 1) break;
      chunk /= 2;
    }
  };
  ddmin();

  // Phase 2: NOP substitution. Neutralize one instruction at a time
  // without disturbing the offsets of surviving control flow.
  const std::uint32_t nop = riscv::enc_nop();
  for (;;) {
    std::vector<riscv::Program> candidates;
    for (std::size_t i = 0; i < current.code.size(); ++i) {
      if (current.code[i] == nop) continue;
      riscv::Program candidate = current;
      candidate.code[i] = nop;
      candidates.push_back(std::move(candidate));
    }
    const std::size_t won =
        best_candidate(candidates, signature, &result.probes);
    if (won == kNpos) break;
    current = candidates[won];
  }

  // Phase 3: operand canonicalization. Re-encode each surviving
  // instruction through decode()+encode() with a zeroed immediate; loads
  // and stores then address the data region's base, ALU immediates
  // become 0. Control flow is left alone (a zero offset is a degenerate
  // self-loop, never a simplification).
  for (;;) {
    std::vector<riscv::Program> candidates;
    for (std::size_t i = 0; i < current.code.size(); ++i) {
      const riscv::DecodedInst d = riscv::decode(current.code[i]);
      if (!d.valid() || riscv::is_control_flow(d.op) || d.imm == 0) continue;
      const std::uint32_t canonical =
          riscv::encode(d.op, d.rd, d.rs1, d.rs2, 0, d.csr);
      if (canonical == current.code[i] || canonical == nop) continue;
      riscv::Program candidate = current;
      candidate.code[i] = canonical;
      candidates.push_back(std::move(candidate));
    }
    const std::size_t won =
        best_candidate(candidates, signature, &result.probes);
    if (won == kNpos) break;
    current = candidates[won];
  }

  // Phase 4: the NOPs phase 2 left behind are dead weight wherever
  // control flow tolerates the offset shift — let ddmin delete them.
  ddmin();

  result.program = std::move(current);
  result.minimized_len = result.program.code.size();
  for (std::size_t i = 0; i < result.program.code.size(); ++i) {
    if (result.program.code[i] != nop) result.leak_instructions.push_back(i);
  }
  return result;
}

}  // namespace specure::triage
