// Filesystem helpers shared by the output-directory producers (VCD
// export, triage bundles) and the CLI.
#pragma once

#include <string>

namespace specure::util {

/// Create `dir` (mkdir -p semantics) and probe it for writability with a
/// throwaway file. Returns "" on success, else a human-readable reason
/// ("cannot be created: ...", "is not writable") for the caller to wrap
/// in its own error type.
std::string ensure_dir_writable(const std::string& dir);

}  // namespace specure::util
