// Minimal leveled logger. Components log through LOG_* macros; verbosity is
// a process-global level so tests/benches can silence the library.
#pragma once

#include <sstream>
#include <string>

namespace specure::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Set/get the process-global minimum level that is emitted.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one log line (used by the macros below).
void log_line(LogLevel level, const std::string& msg);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace specure::util

#define SPECURE_LOG(level)                                      \
  if (static_cast<int>(level) <                                 \
      static_cast<int>(::specure::util::log_level())) {         \
  } else                                                        \
    ::specure::util::detail::LogStream(level)

#define LOG_DEBUG SPECURE_LOG(::specure::util::LogLevel::kDebug)
#define LOG_INFO SPECURE_LOG(::specure::util::LogLevel::kInfo)
#define LOG_WARN SPECURE_LOG(::specure::util::LogLevel::kWarn)
#define LOG_ERROR SPECURE_LOG(::specure::util::LogLevel::kError)
