// Fixed-size bitset with atomic word access — the "LP channel already
// covered" snapshot shared between the result merger (single writer,
// monotonic sets only) and the simulation workers (readers) while both
// run concurrently in the pipelined campaign executor.
//
// A plain std::vector<bool> is a data race there; this shadow makes the
// sharing well-defined without making the campaign timing-dependent: a
// worker that reads a stale word merely probes a channel the merger's
// idempotent LpCoverageMap::commit() would have filtered anyway, so the
// merged result is identical either way (see core/result_merger.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace specure::util {

class AtomicBitset {
 public:
  AtomicBitset() = default;
  explicit AtomicBitset(std::size_t bits)
      : bits_(bits), words_((bits + 63) / 64) {
    for (auto& w : words_) w.store(0, std::memory_order_relaxed);
  }

  // Movable so owners can default-construct then resize; never move while
  // readers are live (the campaign builds the set before workers start).
  AtomicBitset(AtomicBitset&& other) noexcept
      : bits_(other.bits_), words_(std::move(other.words_)) {}
  AtomicBitset& operator=(AtomicBitset&& other) noexcept {
    bits_ = other.bits_;
    words_ = std::move(other.words_);
    return *this;
  }

  std::size_t size() const { return bits_; }

  /// Writer side (the merger): monotonic — bits are set, never cleared.
  void set(std::size_t bit) {
    words_[bit >> 6].fetch_or(std::uint64_t{1} << (bit & 63),
                              std::memory_order_release);
  }

  /// Reader side (workers). A stale false is harmless by construction
  /// (callers only use the bit to skip redundant work).
  bool test(std::size_t bit) const {
    return (words_[bit >> 6].load(std::memory_order_relaxed) >>
            (bit & 63)) & 1;
  }

  /// Single-threaded reset between campaigns.
  void clear() {
    for (auto& w : words_) w.store(0, std::memory_order_relaxed);
  }

 private:
  std::size_t bits_ = 0;
  std::vector<std::atomic<std::uint64_t>> words_;
};

}  // namespace specure::util
