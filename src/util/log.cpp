#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace specure::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_line(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::fprintf(stderr, "[specure %s] %s\n", level_tag(level), msg.c_str());
}

}  // namespace specure::util
