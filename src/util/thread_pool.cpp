#include "util/thread_pool.hpp"

namespace specure::util {

ThreadPool::ThreadPool(std::size_t contexts)
    : contexts_(contexts == 0 ? 1 : contexts) {
  threads_.reserve(contexts_ - 1);
  for (std::size_t c = 1; c < contexts_; ++c) {
    threads_.emplace_back([this, c] { worker_main(c); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::run_tasks(
    const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t context) {
  for (;;) {
    const std::size_t task = next_task_.fetch_add(1);
    if (task >= task_count_) return;
    try {
      fn(task, context);
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu_);
      if (!error_) error_ = std::current_exception();
      // Abandon unclaimed tasks: park the cursor past the end.
      next_task_.store(task_count_);
      return;
    }
  }
}

void ThreadPool::worker_main(std::size_t context) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      start_cv_.wait(lk, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      fn = fn_;
    }
    run_tasks(*fn, context);
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++idle_workers_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::parallel_for(
    std::size_t tasks,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (tasks == 0) return;
  if (threads_.empty()) {
    for (std::size_t t = 0; t < tasks; ++t) fn(t, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    fn_ = &fn;
    task_count_ = tasks;
    next_task_.store(0);
    idle_workers_ = 0;
    error_ = nullptr;
    ++generation_;
  }
  start_cv_.notify_all();
  run_tasks(fn, 0);  // the caller is context 0
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] { return idle_workers_ == threads_.size(); });
  fn_ = nullptr;
  if (error_) std::rethrow_exception(error_);
}

}  // namespace specure::util
