#include "util/thread_pool.hpp"

namespace specure::util {

ThreadPool::ThreadPool(std::size_t contexts)
    : contexts_(contexts == 0 ? 1 : contexts) {
  threads_.reserve(contexts_ - 1);
  slots_.reserve(contexts_ - 1);
  for (std::size_t c = 1; c < contexts_; ++c) {
    slots_.push_back(std::make_unique<WorkerSlot>());
  }
  for (std::size_t c = 1; c < contexts_; ++c) {
    threads_.emplace_back([this, c] { worker_main(c); });
  }
}

ThreadPool::~ThreadPool() {
  for (auto& slot : slots_) {
    {
      std::lock_guard<std::mutex> lk(slot->mu);
      slot->shutdown = true;
    }
    slot->cv.notify_one();
  }
  for (auto& t : threads_) t.join();
}

void ThreadPool::run_tasks(
    const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t context) {
  for (;;) {
    // Claiming needs only the RMW's atomicity; the acquire fence orders
    // the claim before the task body touches shared task data.
    const std::size_t task = next_task_.fetch_add(1,
                                                  std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (task >= task_count_) return;
    try {
      fn(task, context);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lk(done_mu_);
        if (!error_) error_ = std::current_exception();
      }
      // Abandon unclaimed tasks: park the cursor past the end.
      next_task_.store(task_count_, std::memory_order_relaxed);
      return;
    }
  }
}

void ThreadPool::worker_main(std::size_t context) {
  WorkerSlot& slot = *slots_[context - 1];
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(slot.mu);
      slot.cv.wait(lk, [&] {
        return slot.shutdown || slot.generation != seen_generation;
      });
      if (slot.shutdown) return;
      seen_generation = slot.generation;
    }
    // fn_/task_count_ were written before the generation bump and are
    // published to this worker by slot.mu.
    run_tasks(*fn_, context);
    {
      std::lock_guard<std::mutex> lk(done_mu_);
      if (active_workers_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        done_cv_.notify_one();
      }
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t tasks,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (tasks == 0) return;
  if (threads_.empty()) {
    for (std::size_t t = 0; t < tasks; ++t) fn(t, 0);
    return;
  }
  fn_ = &fn;
  task_count_ = tasks;
  next_task_.store(0, std::memory_order_relaxed);
  error_ = nullptr;
  active_workers_.store(threads_.size(), std::memory_order_relaxed);
  // Per-worker wakeup: each slot's mutex publishes the batch descriptor
  // to its worker; no shared lock, no broadcast stampede.
  for (auto& slot : slots_) {
    {
      std::lock_guard<std::mutex> lk(slot->mu);
      ++slot->generation;
    }
    slot->cv.notify_one();
  }
  run_tasks(fn, 0);  // the caller is context 0
  std::unique_lock<std::mutex> lk(done_mu_);
  done_cv_.wait(lk, [&] {
    return active_workers_.load(std::memory_order_acquire) == 0;
  });
  fn_ = nullptr;
  if (error_) {
    const std::exception_ptr error = error_;
    error_ = nullptr;
    std::rethrow_exception(error);
  }
}

}  // namespace specure::util
