#include "util/strings.hpp"

#include <algorithm>
#include <cctype>

namespace specure::util {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string hex(std::uint64_t value, unsigned digits) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  do {
    out.insert(out.begin(), kDigits[value & 0xf]);
    value >>= 4;
  } while (value != 0);
  while (out.size() < digits) out.insert(out.begin(), '0');
  return out;
}

std::string hex0x(std::uint64_t value, unsigned digits) {
  return "0x" + hex(value, digits);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = diag + (a[i - 1] != b[j - 1]);
      diag = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, sub});
    }
  }
  return row[b.size()];
}

std::string closest_match(std::string_view needle,
                          const std::vector<std::string>& candidates) {
  const std::size_t cutoff =
      std::max<std::size_t>(2, needle.size() / 3);
  std::size_t best = cutoff + 1;
  std::string match;
  for (const std::string& c : candidates) {
    const std::size_t d = edit_distance(needle, c);
    if (d < best) {
      best = d;
      match = c;
    }
  }
  return match;
}

}  // namespace specure::util
