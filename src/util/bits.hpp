// Bit-manipulation helpers shared by the ISA layer, the simulator and the
// snapshot machinery. Everything here is constexpr and header-only.
#pragma once

#include <cstdint>

namespace specure::util {

/// Mask with the low `width` bits set. width must be in [0, 64].
constexpr std::uint64_t mask(unsigned width) {
  return width >= 64 ? ~0ULL : ((1ULL << width) - 1);
}

/// Extract bits [lo, lo+width) of v.
constexpr std::uint64_t bits(std::uint64_t v, unsigned lo, unsigned width) {
  return (v >> lo) & mask(width);
}

/// Extract a single bit.
constexpr std::uint64_t bit(std::uint64_t v, unsigned pos) {
  return (v >> pos) & 1ULL;
}

/// Sign-extend the low `width` bits of v to 64 bits.
constexpr std::int64_t sext(std::uint64_t v, unsigned width) {
  if (width == 0 || width >= 64) return static_cast<std::int64_t>(v);
  const std::uint64_t sign = 1ULL << (width - 1);
  const std::uint64_t low = v & mask(width);
  return static_cast<std::int64_t>((low ^ sign) - sign);
}

/// Population count of the XOR of two words — number of toggled bits.
constexpr unsigned toggled_bits(std::uint64_t a, std::uint64_t b) {
  return static_cast<unsigned>(__builtin_popcountll(a ^ b));
}

/// Round v up to the next power of two (v=0 -> 1).
constexpr std::uint64_t next_pow2(std::uint64_t v) {
  if (v <= 1) return 1;
  return 1ULL << (64 - __builtin_clzll(v - 1));
}

/// log2 of a power of two.
constexpr unsigned log2_exact(std::uint64_t v) {
  return static_cast<unsigned>(__builtin_ctzll(v));
}

}  // namespace specure::util
