// Small string helpers used by the RTL front-end and report printers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace specure::util {

/// Split on a single delimiter character; empty fields are kept.
std::vector<std::string> split(std::string_view text, char delim);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// True if `text` starts with / ends with the given prefix/suffix.
bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// Hex formatting helpers for reports (lowercase, no 0x / with 0x).
std::string hex(std::uint64_t value, unsigned digits = 0);
std::string hex0x(std::uint64_t value, unsigned digits = 0);

/// Join parts with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Levenshtein edit distance (insert/delete/substitute, all cost 1).
std::size_t edit_distance(std::string_view a, std::string_view b);

/// Closest candidate to `needle` by edit distance, or "" when nothing is
/// plausibly close (distance > max(2, needle.size()/3)). Used for the
/// "did you mean" hints in the CLI and the spec override parser.
std::string closest_match(std::string_view needle,
                          const std::vector<std::string>& candidates);

}  // namespace specure::util
