// Fixed-size pool for batch-parallel loops.
//
// parallel_for(n, fn) invokes fn(task_index, context_index) for every task
// in [0, n). Tasks are claimed dynamically (an atomic cursor), so uneven
// task costs balance automatically. context_index is unique among
// concurrently running invocations and always < contexts(); callers use it
// to index per-thread scratch state (e.g. one simulator per context).
//
// The calling thread participates as context 0, so a pool with
// contexts() == 1 spawns no threads and runs everything inline — the
// serial path has zero synchronisation overhead and is byte-for-byte the
// plain loop.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace specure::util {

class ThreadPool {
 public:
  /// A pool with `contexts` execution contexts: the caller plus
  /// contexts - 1 background threads. contexts == 0 is treated as 1.
  explicit ThreadPool(std::size_t contexts);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t contexts() const { return contexts_; }

  /// Run fn(task, context) for task in [0, tasks); blocks until all tasks
  /// finished. If any invocation throws, the remaining unclaimed tasks are
  /// abandoned and the first exception is rethrown here. Not reentrant.
  void parallel_for(std::size_t tasks,
                    const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_main(std::size_t context);
  void run_tasks(const std::function<void(std::size_t, std::size_t)>& fn,
                 std::size_t context);

  std::size_t contexts_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  const std::function<void(std::size_t, std::size_t)>* fn_ = nullptr;
  std::size_t task_count_ = 0;
  std::atomic<std::size_t> next_task_{0};
  std::size_t idle_workers_ = 0;  ///< workers done with the current generation
  std::exception_ptr error_;
  bool shutdown_ = false;
};

}  // namespace specure::util
