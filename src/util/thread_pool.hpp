// Fixed-size pool for batch-parallel loops.
//
// parallel_for(n, fn) invokes fn(task_index, context_index) for every task
// in [0, n). Tasks are claimed dynamically (an atomic cursor), so uneven
// task costs balance automatically. context_index is unique among
// concurrently running invocations and always < contexts(); callers use it
// to index per-thread scratch state (e.g. one simulator per context).
//
// The calling thread participates as context 0, so a pool with
// contexts() == 1 spawns no threads and runs everything inline — the
// serial path has zero synchronisation overhead and is byte-for-byte the
// plain loop.
//
// Wakeup and completion are per-worker: each worker parks on its own
// cache-line-sized slot (mutex + cv + generation) instead of one shared
// mutex with a broadcast, so kicking off a batch is N uncontended
// lock/notify pairs rather than N threads stampeding one lock. The task
// cursor lives alone on a padded cache line — it is the single hottest
// word in the pool and previously false-shared with the batch descriptor.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace specure::util {

class ThreadPool {
 public:
  /// A pool with `contexts` execution contexts: the caller plus
  /// contexts - 1 background threads. contexts == 0 is treated as 1.
  explicit ThreadPool(std::size_t contexts);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t contexts() const { return contexts_; }

  /// Run fn(task, context) for task in [0, tasks); blocks until all tasks
  /// finished. If any invocation throws, the remaining unclaimed tasks are
  /// abandoned and the first exception is rethrown here. Not reentrant.
  void parallel_for(std::size_t tasks,
                    const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  /// Per-worker parking slot. alignas(64) keeps one worker's wakeup state
  /// (and generation scan) off every other worker's cache line.
  struct alignas(64) WorkerSlot {
    std::mutex mu;
    std::condition_variable cv;
    std::uint64_t generation = 0;  ///< bumped under mu to start a batch
    bool shutdown = false;
  };

  void worker_main(std::size_t context);
  void run_tasks(const std::function<void(std::size_t, std::size_t)>& fn,
                 std::size_t context);

  std::size_t contexts_;
  std::vector<std::thread> threads_;
  std::vector<std::unique_ptr<WorkerSlot>> slots_;  ///< one per thread

  // Batch descriptor: written by the caller before the generation bump
  // (publication happens via each slot's mutex), read-only during a batch.
  const std::function<void(std::size_t, std::size_t)>* fn_ = nullptr;
  std::size_t task_count_ = 0;

  /// The dynamic task cursor — the only cross-thread word mutated on the
  /// claim fast path, so it gets a cache line of its own (it used to
  /// share one with task_count_/fn_, putting every claim's RFO in front
  /// of every other worker's read of the batch descriptor).
  alignas(64) std::atomic<std::size_t> next_task_{0};
  alignas(64) std::atomic<std::size_t> active_workers_{0};

  // Completion + error channel (cold: touched once per batch per worker).
  std::mutex done_mu_;
  std::condition_variable done_cv_;
  std::exception_ptr error_;
};

}  // namespace specure::util
