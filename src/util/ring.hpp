// Bounded lock-free rings for the pipelined campaign executor
// (core/session.cpp): per-worker SPSC job queues (merger -> worker) and
// one MPSC completion ring (workers -> merger).
//
// Both rings are sized for a producer that never outruns the consumer by
// more than the campaign's sliding window, so push() never blocks — it
// returns false only on a capacity bug, which callers treat as fatal.
// pop() is non-blocking; pop_wait() parks the consumer when the ring is
// empty. Parking uses a mutex + condition variable with a seq_cst
// "consumer is parked" flag (no standalone fences — they are both easy
// to get wrong and poorly modelled by TSan) plus a short timed-wait
// backstop, so a lost wakeup can cost microseconds, never a hang.
//
// Head and tail live on their own cache lines (alignas of two mutating
// counters on one line would make every push invalidate the consumer's
// cursor and vice versa — exactly the false sharing this layer exists to
// remove).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

namespace specure::util {

/// Smallest power of two >= n (and >= 2), so ring indices can wrap with a
/// mask instead of a modulo.
inline std::size_t ring_capacity_for(std::size_t n) {
  std::size_t cap = 2;
  while (cap < n) cap <<= 1;
  return cap;
}

/// Single-producer single-consumer bounded ring. The producer owns
/// tail_, the consumer owns head_; each reads the other's cursor with
/// acquire and publishes its own with release, so the element written
/// before a push is visible to the pop that observes the new tail.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t min_capacity)
      : mask_(ring_capacity_for(min_capacity) - 1),
        buffer_(mask_ + 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Producer side. False when full (a sizing bug for our callers).
  bool push(T value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) > mask_) return false;
    buffer_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    wake_consumer();
    return true;
  }

  /// Consumer side, non-blocking.
  bool pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    out = std::move(buffer_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: block until an element arrives or the ring is closed
  /// and drained. False means closed-and-empty (shutdown).
  bool pop_wait(T& out) {
    for (;;) {
      if (pop(out)) return true;
      if (closed_.load(std::memory_order_acquire)) {
        // Every push happens-before close(), so after observing closed a
        // failed pop means the ring is truly drained.
        return pop(out);
      }
      std::unique_lock<std::mutex> lk(park_mu_);
      parked_.store(true, std::memory_order_seq_cst);
      if (!empty() || closed_.load(std::memory_order_seq_cst)) {
        parked_.store(false, std::memory_order_relaxed);
        continue;
      }
      // Timed backstop: even a (theoretical) lost wakeup only costs us
      // half a millisecond, not a hang.
      park_cv_.wait_for(lk, std::chrono::microseconds(500));
      parked_.store(false, std::memory_order_relaxed);
    }
  }

  /// Producer side: no more pushes will follow. Parked consumers drain
  /// the remaining elements, then pop_wait returns false.
  void close() {
    closed_.store(true, std::memory_order_seq_cst);
    std::lock_guard<std::mutex> lk(park_mu_);
    park_cv_.notify_all();
  }

  bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

 private:
  void wake_consumer() {
    if (parked_.load(std::memory_order_seq_cst)) {
      std::lock_guard<std::mutex> lk(park_mu_);
      park_cv_.notify_all();
    }
  }

  const std::size_t mask_;
  std::vector<T> buffer_;
  alignas(64) std::atomic<std::size_t> head_{0};  ///< consumer cursor
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< producer cursor
  alignas(64) std::atomic<bool> closed_{false};
  std::atomic<bool> parked_{false};
  std::mutex park_mu_;
  std::condition_variable park_cv_;
};

/// Multi-producer single-consumer bounded ring (Vyukov-style: every cell
/// carries a sequence number, so producers claim cells with one
/// fetch_add and publish independently — no producer-side lock, no ABA).
template <typename T>
class MpscRing {
 public:
  explicit MpscRing(std::size_t min_capacity)
      : mask_(ring_capacity_for(min_capacity) - 1),
        cells_(mask_ + 1) {
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Any producer thread. False when full (a sizing bug for our callers).
  bool push(T value) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.sequence.load(std::memory_order_acquire);
      const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          cell.value = std::move(value);
          cell.sequence.store(pos + 1, std::memory_order_release);
          wake_consumer();
          return true;
        }
      } else if (dif < 0) {
        return false;  // full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// The single consumer thread, non-blocking.
  bool pop(T& out) {
    const std::size_t pos = head_;
    Cell& cell = cells_[pos & mask_];
    const std::size_t seq = cell.sequence.load(std::memory_order_acquire);
    if (static_cast<std::intptr_t>(seq) -
            static_cast<std::intptr_t>(pos + 1) < 0) {
      return false;  // cell not yet published
    }
    out = std::move(cell.value);
    cell.sequence.store(pos + mask_ + 1, std::memory_order_release);
    head_ = pos + 1;
    return true;
  }

  /// The single consumer thread: park until an element arrives or the
  /// ring is closed and drained.
  bool pop_wait(T& out) {
    for (;;) {
      if (pop(out)) return true;
      if (closed_.load(std::memory_order_acquire)) {
        if (pop(out)) return true;
        return false;
      }
      std::unique_lock<std::mutex> lk(park_mu_);
      parked_.store(true, std::memory_order_seq_cst);
      if (pop(out)) {
        parked_.store(false, std::memory_order_relaxed);
        return true;
      }
      if (closed_.load(std::memory_order_seq_cst)) {
        parked_.store(false, std::memory_order_relaxed);
        continue;
      }
      park_cv_.wait_for(lk, std::chrono::microseconds(500));
      parked_.store(false, std::memory_order_relaxed);
    }
  }

  void close() {
    closed_.store(true, std::memory_order_seq_cst);
    std::lock_guard<std::mutex> lk(park_mu_);
    park_cv_.notify_all();
  }

 private:
  struct Cell {
    std::atomic<std::size_t> sequence{0};
    T value{};
  };

  void wake_consumer() {
    if (parked_.load(std::memory_order_seq_cst)) {
      std::lock_guard<std::mutex> lk(park_mu_);
      park_cv_.notify_all();
    }
  }

  const std::size_t mask_;
  std::vector<Cell> cells_;
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< producers claim here
  alignas(64) std::size_t head_ = 0;              ///< consumer-private
  alignas(64) std::atomic<bool> closed_{false};
  std::atomic<bool> parked_{false};
  std::mutex park_mu_;
  std::condition_variable park_cv_;
};

}  // namespace specure::util
