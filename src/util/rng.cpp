#include "util/rng.hpp"

namespace specure::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Debiased modulo via rejection on the top slice.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t Rng::range(std::uint64_t lo, std::uint64_t hi) {
  return lo + below(hi - lo + 1);
}

bool Rng::chance(std::uint32_t num, std::uint32_t den) {
  return below(den) < num;
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

Rng Rng::fork() { return Rng(next()); }

std::uint64_t Rng::derive_seed(std::uint64_t base, std::uint64_t stream) {
  // Feed splitmix64 a mix of base and stream; the golden-ratio multiply
  // decorrelates adjacent stream ids before the finalizer.
  std::uint64_t state = base ^ (stream * 0x9e3779b97f4a7c15ULL);
  return splitmix64(state);
}

Rng Rng::split(std::uint64_t stream) const {
  return Rng(derive_seed(s_[0] ^ s_[3], stream));
}

}  // namespace specure::util
