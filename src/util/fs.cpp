#include "util/fs.hpp"

#include <filesystem>
#include <fstream>

namespace specure::util {

std::string ensure_dir_writable(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec && !std::filesystem::is_directory(dir)) {
    return "cannot be created: " + ec.message();
  }
  const std::filesystem::path probe =
      std::filesystem::path(dir) / ".specure_write_probe";
  {
    std::ofstream out(probe);
    if (!out) return "is not writable";
  }
  std::filesystem::remove(probe, ec);
  return "";
}

}  // namespace specure::util
