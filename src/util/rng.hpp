// Deterministic pseudo-random number generation for reproducible fuzzing.
//
// All stochastic components in Specure (mutators, corpus scheduling, seed
// generation, workload synthesis) draw from util::Rng so that a campaign is
// fully reproducible from a single 64-bit seed. The generator is
// xoshiro256** seeded via splitmix64, which is both fast and statistically
// strong enough for fuzzing workloads.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace specure::util {

/// splitmix64 step; used to expand a single seed into generator state.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** PRNG. Deterministic, copyable, cheap to fork.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5ec02e);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform in [0, bound). bound == 0 returns 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

  /// True with probability num/den. Requires den > 0.
  bool chance(std::uint32_t num, std::uint32_t den);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Pick a uniformly random element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    return items[static_cast<std::size_t>(below(items.size()))];
  }
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return items[static_cast<std::size_t>(below(items.size()))];
  }

  /// Fork a statistically independent child generator (for subcomponents
  /// that must not perturb the parent's stream).
  Rng fork();

  /// Derive the seed of an independent child stream identified by
  /// `stream` (e.g. a fuzzing iteration number) from a base seed, without
  /// any generator state involved. Deterministic and order-independent:
  /// derive_seed(b, i) is the same no matter how many other streams were
  /// split before — the property the parallel campaign engine relies on
  /// to stay bit-identical across thread counts.
  static std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream);

  /// Split an independent child generator for `stream` off the *current*
  /// state without perturbing this generator (unlike fork(), which
  /// advances the parent).
  Rng split(std::uint64_t stream) const;

  /// The raw xoshiro256** state, for whole-campaign checkpoint/restore.
  /// set_state() with a previous state() resumes the exact stream.
  std::array<std::uint64_t, 4> state() const { return {s_[0], s_[1], s_[2], s_[3]}; }
  void set_state(const std::array<std::uint64_t, 4>& s) {
    s_[0] = s[0]; s_[1] = s[1]; s_[2] = s[2]; s_[3] = s[3];
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace specure::util
