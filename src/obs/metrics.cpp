#include "obs/metrics.hpp"

namespace specure::obs {

double HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  // The (1-based) rank of the requested observation, rounded up so p=100
  // lands on the last observation and p=0 on the first.
  const double want = p / 100.0 * static_cast<double>(count);
  std::uint64_t rank = static_cast<std::uint64_t>(want);
  if (static_cast<double>(rank) < want || rank == 0) ++rank;

  std::uint64_t below = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    const std::uint64_t n = buckets[i];
    if (n == 0) continue;
    if (below + n >= rank) {
      const double lower =
          i == 0 ? 0 : static_cast<double>(bucket_upper(i - 1)) + 1;
      const double upper = static_cast<double>(bucket_upper(i));
      const double frac =
          static_cast<double>(rank - below) / static_cast<double>(n);
      return lower + (upper - lower) * frac;
    }
    below += n;
  }
  return static_cast<double>(bucket_upper(kHistogramBuckets - 1));
}

const CounterSnapshot* Snapshot::counter(std::string_view name) const {
  for (const CounterSnapshot& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const GaugeSnapshot* Snapshot::gauge(std::string_view name) const {
  for (const GaugeSnapshot& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const HistogramSnapshot* Snapshot::histogram(std::string_view name) const {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::uint64_t Snapshot::counter_value(std::string_view name) const {
  const CounterSnapshot* c = counter(name);
  return c != nullptr ? c->total : 0;
}

Registry::Registry(std::size_t shards) : shards_(shards == 0 ? 1 : shards) {}

template <typename Slot>
Slot* Registry::find_slot(std::deque<Slot>& slots, const std::string& name) {
  for (Slot& slot : slots) {
    if (slot.name == name) return &slot;
  }
  return nullptr;
}

Counter Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  if (CounterSlot* slot = find_slot(counters_, name)) {
    return Counter(slot->cells.get());
  }
  CounterSlot& slot = counters_.emplace_back();
  slot.name = name;
  slot.cells = std::make_unique<Counter::Cell[]>(shards_);
  return Counter(slot.cells.get());
}

Gauge Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  if (GaugeSlot* slot = find_slot(gauges_, name)) {
    return Gauge(&slot->cell);
  }
  GaugeSlot& slot = gauges_.emplace_back();
  slot.name = name;
  return Gauge(&slot.cell);
}

Histogram Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  if (HistogramSlot* slot = find_slot(histograms_, name)) {
    return Histogram(slot->shards.get());
  }
  HistogramSlot& slot = histograms_.emplace_back();
  slot.name = name;
  slot.shards = std::make_unique<Histogram::Shard[]>(shards_);
  return Histogram(slot.shards.get());
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  Snapshot snap;
  snap.shards = shards_;
  snap.counters.reserve(counters_.size());
  for (const CounterSlot& slot : counters_) {
    CounterSnapshot c;
    c.name = slot.name;
    c.shards.resize(shards_);
    for (std::size_t s = 0; s < shards_; ++s) {
      c.shards[s] = slot.cells[s].v.load(std::memory_order_relaxed);
      c.total += c.shards[s];
    }
    snap.counters.push_back(std::move(c));
  }
  snap.gauges.reserve(gauges_.size());
  for (const GaugeSlot& slot : gauges_) {
    snap.gauges.push_back(
        {slot.name, slot.cell.load(std::memory_order_relaxed)});
  }
  snap.histograms.reserve(histograms_.size());
  for (const HistogramSlot& slot : histograms_) {
    HistogramSnapshot h;
    h.name = slot.name;
    for (std::size_t s = 0; s < shards_; ++s) {
      const Histogram::Shard& shard = slot.shards[s];
      h.count += shard.count.load(std::memory_order_relaxed);
      h.sum += shard.sum.load(std::memory_order_relaxed);
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        h.buckets[b] += shard.buckets[b].load(std::memory_order_relaxed);
      }
    }
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

}  // namespace specure::obs
