// Span-based pipeline tracing, emitted as Chrome trace-event JSON
// (loadable in Perfetto / chrome://tracing).
//
// Recording model: one single-writer ring buffer per lane (lane =
// pipeline worker or the merge strand — the same lane map as the metrics
// registry shards). A span is recorded *after* it closes, from two
// steady_clock readings the call site usually already took for its
// metrics counters, so tracing adds no synchronization to the pipeline
// and the rings need no atomics. Rings overwrite their oldest events
// once full (the per-lane drop count is reported in the written trace),
// so tracing is safe on million-iteration campaigns: the file always
// holds the most recent window of activity at a bounded memory cost.
//
// Span names/categories must be string literals (the recorder stores the
// pointers, not copies).
#pragma once

#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace specure::obs {

/// One optional integer argument attached to a span (rendered into the
/// trace event's "args" object). `name` must be a string literal.
struct TraceArg {
  const char* name = nullptr;
  std::int64_t value = 0;
};

struct TraceEvent {
  const char* name = nullptr;      ///< literal
  const char* category = nullptr;  ///< literal: "pipeline" | "sim" | ...
  std::uint32_t lane = 0;
  std::uint64_t ts_ns = 0;   ///< begin, nanoseconds since recorder epoch
  std::uint64_t dur_ns = 0;
  std::uint64_t iteration = 0;  ///< campaign iteration; 0 = untagged
  TraceArg args[3];
};

class TraceRecorder {
 public:
  using Clock = std::chrono::steady_clock;

  /// `total_capacity` events are split evenly across `lanes` rings
  /// (at least 1024 per lane).
  TraceRecorder(std::size_t lanes, std::size_t total_capacity);

  std::size_t lanes() const { return lanes_.size(); }

  /// Human-readable lane label for the trace's thread-name metadata.
  void set_lane_name(std::size_t lane, std::string name);

  /// Record a closed span on `lane`. Single writer per lane at any time;
  /// different lanes may record concurrently.
  void record(std::size_t lane, const char* name, const char* category,
              Clock::time_point begin, Clock::time_point end,
              std::uint64_t iteration = 0, TraceArg a0 = {}, TraceArg a1 = {},
              TraceArg a2 = {});

  /// Events currently retained / dropped to ring overwrite, across lanes.
  std::size_t size() const;
  std::uint64_t dropped() const;

  /// Serialize everything retained as one Chrome trace-event JSON
  /// object. Call only with all writers quiesced (the session writes the
  /// file after worker threads joined).
  void write_chrome_trace(std::ostream& out) const;

 private:
  struct Lane {
    std::vector<TraceEvent> ring;
    std::uint64_t recorded = 0;  ///< events ever recorded on this lane
    std::string name;
  };

  Clock::time_point epoch_;
  std::vector<Lane> lanes_;
};

}  // namespace specure::obs
