#include "obs/trace.hpp"

#include <algorithm>

namespace specure::obs {

namespace {

/// Span names and lane labels are code-controlled literals, but escape
/// defensively so the emitted JSON is well-formed no matter what.
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

/// Microseconds with nanosecond precision — the trace-event "ts"/"dur"
/// unit is fractional microseconds.
std::string us(std::uint64_t ns) {
  std::string out = std::to_string(ns / 1000);
  const std::uint64_t frac = ns % 1000;
  out += '.';
  out += static_cast<char>('0' + frac / 100);
  out += static_cast<char>('0' + frac / 10 % 10);
  out += static_cast<char>('0' + frac % 10);
  return out;
}

}  // namespace

TraceRecorder::TraceRecorder(std::size_t lanes, std::size_t total_capacity)
    : epoch_(Clock::now()), lanes_(lanes == 0 ? 1 : lanes) {
  const std::size_t per_lane =
      std::max<std::size_t>(total_capacity / lanes_.size(), 1024);
  for (Lane& lane : lanes_) lane.ring.resize(per_lane);
}

void TraceRecorder::set_lane_name(std::size_t lane, std::string name) {
  if (lane < lanes_.size()) lanes_[lane].name = std::move(name);
}

void TraceRecorder::record(std::size_t lane, const char* name,
                           const char* category, Clock::time_point begin,
                           Clock::time_point end, std::uint64_t iteration,
                           TraceArg a0, TraceArg a1, TraceArg a2) {
  if (lane >= lanes_.size()) return;
  Lane& l = lanes_[lane];
  TraceEvent& e = l.ring[l.recorded % l.ring.size()];
  ++l.recorded;
  e.name = name;
  e.category = category;
  e.lane = static_cast<std::uint32_t>(lane);
  const auto clamp_ns = [this](Clock::time_point t) {
    return t <= epoch_
               ? std::uint64_t{0}
               : static_cast<std::uint64_t>(
                     std::chrono::duration_cast<std::chrono::nanoseconds>(
                         t - epoch_)
                         .count());
  };
  e.ts_ns = clamp_ns(begin);
  const std::uint64_t end_ns = clamp_ns(end);
  e.dur_ns = end_ns > e.ts_ns ? end_ns - e.ts_ns : 0;
  e.iteration = iteration;
  e.args[0] = a0;
  e.args[1] = a1;
  e.args[2] = a2;
}

std::size_t TraceRecorder::size() const {
  std::size_t n = 0;
  for (const Lane& l : lanes_) {
    n += static_cast<std::size_t>(
        std::min<std::uint64_t>(l.recorded, l.ring.size()));
  }
  return n;
}

std::uint64_t TraceRecorder::dropped() const {
  std::uint64_t n = 0;
  for (const Lane& l : lanes_) {
    if (l.recorded > l.ring.size()) n += l.recorded - l.ring.size();
  }
  return n;
}

void TraceRecorder::write_chrome_trace(std::ostream& out) const {
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  const auto sep = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n";
  };

  // Metadata: one named thread per lane, all under one process.
  sep();
  out << "{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": "
         "\"process_name\", \"args\": {\"name\": \"specure\"}}";
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    sep();
    const std::string label =
        lanes_[i].name.empty() ? "lane " + std::to_string(i) : lanes_[i].name;
    out << "{\"ph\": \"M\", \"pid\": 1, \"tid\": " << i
        << ", \"name\": \"thread_name\", \"args\": {\"name\": \""
        << escape(label) << "\"}}";
  }

  // Complete ("X") events, oldest first per lane. Perfetto orders by
  // "ts" itself, so cross-lane ordering needs no global sort here.
  for (const Lane& l : lanes_) {
    const std::size_t held = static_cast<std::size_t>(
        std::min<std::uint64_t>(l.recorded, l.ring.size()));
    const std::uint64_t start = l.recorded - held;
    for (std::uint64_t k = 0; k < held; ++k) {
      const TraceEvent& e = l.ring[(start + k) % l.ring.size()];
      sep();
      out << "{\"ph\": \"X\", \"pid\": 1, \"tid\": " << e.lane
          << ", \"name\": \"" << escape(e.name ? e.name : "")
          << "\", \"cat\": \"" << escape(e.category ? e.category : "")
          << "\", \"ts\": " << us(e.ts_ns) << ", \"dur\": " << us(e.dur_ns)
          << ", \"args\": {";
      bool first_arg = true;
      const auto arg = [&](const char* name, std::int64_t value) {
        if (!first_arg) out << ", ";
        first_arg = false;
        out << "\"" << escape(name) << "\": " << value;
      };
      arg("worker", static_cast<std::int64_t>(e.lane));
      if (e.iteration != 0) {
        arg("iteration", static_cast<std::int64_t>(e.iteration));
      }
      for (const TraceArg& a : e.args) {
        if (a.name != nullptr) arg(a.name, a.value);
      }
      out << "}}";
    }
  }

  // Drop accounting: a tooling-visible marker that the rings overwrote
  // old events (the trace is the most recent window, not the whole run).
  if (dropped() != 0) {
    sep();
    out << "{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": "
           "\"trace_dropped_events\", \"args\": {\"count\": "
        << dropped() << "}}";
  }
  out << "\n]}\n";
}

}  // namespace specure::obs
