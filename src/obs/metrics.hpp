// obs — the unified observability layer: a lock-free metrics registry
// shared by the campaign pipeline, the benches and the serve daemon.
//
// Design: registration (name → instrument) takes a mutex and happens
// once per run() setup; the hot path — Counter::add / Gauge::set /
// Histogram::record — is a handful of relaxed atomic operations on
// cache-line-aligned per-shard cells and never blocks, allocates or
// branches on recorded values. Shards map to pipeline lanes (one per
// simulation worker plus one for the merge strand), so concurrent
// writers never contend on a line and per-worker breakdowns survive
// into snapshots.
//
// Everything here is wall-clock telemetry: instruments are written from
// timing/count call sites only, nothing in the campaign ever reads them
// back into a decision, so recording is result-neutral by construction
// (pinned by the on/off differential in tests/obs_test.cpp).
//
// Snapshot() can run concurrently with writers (relaxed reads; each
// value is individually atomic — per-instrument totals are exact once
// writers quiesce, and monotonically fresh while they run).
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace specure::obs {

/// Log2-bucketed histogram resolution: bucket 0 holds the value 0,
/// bucket i >= 1 holds [2^(i-1), 2^i - 1]. 64 buckets cover the full
/// uint64 range (values are nanoseconds at every current call site).
constexpr std::size_t kHistogramBuckets = 64;

/// Sharded monotonic counter handle. Copyable, trivially destructible;
/// valid while the owning Registry lives. A default-constructed handle
/// is inert (add() is a no-op), so instrumented code needs no null
/// checks when observability is not wired up.
class Counter {
 public:
  Counter() = default;

  void add(std::size_t shard, std::uint64_t v = 1) const {
    if (cells_ != nullptr) {
      cells_[shard].v.fetch_add(v, std::memory_order_relaxed);
    }
  }

  bool valid() const { return cells_ != nullptr; }

 private:
  friend class Registry;
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  explicit Counter(Cell* cells) : cells_(cells) {}
  Cell* cells_ = nullptr;
};

/// Last-value gauge handle (unsharded: gauges are written from one
/// strand at a time — the merge strand or the daemon runner).
class Gauge {
 public:
  Gauge() = default;

  void set(std::uint64_t v) const {
    if (cell_ != nullptr) cell_->store(v, std::memory_order_relaxed);
  }

  bool valid() const { return cell_ != nullptr; }

 private:
  friend class Registry;
  explicit Gauge(std::atomic<std::uint64_t>* cell) : cell_(cell) {}
  std::atomic<std::uint64_t>* cell_ = nullptr;
};

/// Sharded log2-bucketed histogram handle.
class Histogram {
 public:
  Histogram() = default;

  /// The bucket index a value lands in (log2 rule above; the top bucket
  /// absorbs the unrepresentable tail past 2^62).
  static std::size_t bucket_of(std::uint64_t v) {
    return std::min(static_cast<std::size_t>(std::bit_width(v)),
                    kHistogramBuckets - 1);
  }

  void record(std::size_t shard, std::uint64_t v) const {
    if (shards_ == nullptr) return;
    Shard& s = shards_[shard];
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
    s.buckets[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  }

  bool valid() const { return shards_ != nullptr; }

 private:
  friend class Registry;
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
  };
  explicit Histogram(Shard* shards) : shards_(shards) {}
  Shard* shards_ = nullptr;
};

/// Point-in-time copy of one counter (total plus the per-shard split —
/// the per-worker breakdown PipelineStats renders).
struct CounterSnapshot {
  std::string name;
  std::uint64_t total = 0;
  std::vector<std::uint64_t> shards;
};

struct GaugeSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

/// Point-in-time copy of one histogram, merged across shards.
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  /// Inclusive upper bound of bucket i (0 for bucket 0, else 2^i - 1).
  static std::uint64_t bucket_upper(std::size_t i) {
    if (i == 0) return 0;
    if (i >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << i) - 1;
  }

  /// Estimated value at percentile p (0..100), linearly interpolated
  /// within the containing log2 bucket; 0 when the histogram is empty.
  double percentile(double p) const;
};

struct Snapshot {
  std::size_t shards = 0;
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  const CounterSnapshot* counter(std::string_view name) const;
  const GaugeSnapshot* gauge(std::string_view name) const;
  const HistogramSnapshot* histogram(std::string_view name) const;
  /// Counter total, 0 when absent.
  std::uint64_t counter_value(std::string_view name) const;
};

/// The instrument registry. Thread-safe registration (idempotent:
/// looking up an existing name returns the same cells); instruments are
/// cumulative for the registry's lifetime and never unregistered, so
/// handles stay valid until the Registry is destroyed.
class Registry {
 public:
  /// `shards` is the writer-lane count (workers + merge strand). Every
  /// sharded instrument gets this many cells.
  explicit Registry(std::size_t shards);

  std::size_t shards() const { return shards_; }

  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  Histogram histogram(const std::string& name);

  Snapshot snapshot() const;

 private:
  template <typename Slot>
  Slot* find_slot(std::deque<Slot>& slots, const std::string& name);

  struct CounterSlot {
    std::string name;
    std::unique_ptr<Counter::Cell[]> cells;
  };
  struct GaugeSlot {
    std::string name;
    std::atomic<std::uint64_t> cell{0};
  };
  struct HistogramSlot {
    std::string name;
    std::unique_ptr<Histogram::Shard[]> shards;
  };

  std::size_t shards_;
  mutable std::mutex mu_;  ///< registration + snapshot iteration only
  // deques: stable element addresses under growth (handles point in).
  std::deque<CounterSlot> counters_;
  std::deque<GaugeSlot> gauges_;
  std::deque<HistogramSlot> histograms_;
};

}  // namespace specure::obs
