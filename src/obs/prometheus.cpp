#include "obs/prometheus.hpp"

#include <cstdio>

namespace specure::obs {

namespace {

bool ends_with_ns(const std::string& s) {
  return s.size() >= 3 && s.compare(s.size() - 3, 3, "_ns") == 0;
}

/// "stage/merge_ns" -> ("specure_stage_merge_seconds", true).
std::string family_name(const std::string& raw, bool* is_ns) {
  std::string name = raw;
  // The "hist/" prefix is a registry namespace, not exposition-relevant.
  if (name.rfind("hist/", 0) == 0) name = name.substr(5);
  *is_ns = ends_with_ns(name);
  if (*is_ns) name = name.substr(0, name.size() - 3) + "_seconds";
  for (char& c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    if (!ok) c = '_';
  }
  return "specure_" + name;
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string braced(const std::string& labels) {
  return labels.empty() ? "" : "{" + labels + "}";
}

std::string with_label(const std::string& labels, const std::string& extra) {
  return "{" + (labels.empty() ? extra : labels + "," + extra) + "}";
}

}  // namespace

PrometheusRenderer::Family& PrometheusRenderer::family(const std::string& name,
                                                      const char* type) {
  auto [it, inserted] = families_.try_emplace(name);
  if (inserted) {
    it->second.type = type;
    order_.push_back(name);
  }
  return it->second;
}

void PrometheusRenderer::add(const Snapshot& snapshot,
                             const std::string& labels) {
  for (const CounterSnapshot& c : snapshot.counters) {
    bool is_ns = false;
    const std::string name = family_name(c.name, &is_ns) + "_total";
    family(name, "counter")
        .lines.push_back(name + braced(labels) + " " +
                         (is_ns ? fmt(static_cast<double>(c.total) / 1e9)
                                : std::to_string(c.total)));
  }
  for (const GaugeSnapshot& g : snapshot.gauges) {
    bool is_ns = false;
    const std::string name = family_name(g.name, &is_ns);
    family(name, "gauge")
        .lines.push_back(name + braced(labels) + " " +
                         (is_ns ? fmt(static_cast<double>(g.value) / 1e9)
                                : std::to_string(g.value)));
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    bool is_ns = false;
    const std::string name = family_name(h.name, &is_ns);
    const double scale = is_ns ? 1e-9 : 1.0;
    Family& fam = family(name, "histogram");
    // Cumulative "le" buckets; only non-empty log2 buckets are emitted
    // (plus the mandatory +Inf), keeping the exposition compact.
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      cumulative += h.buckets[b];
      const double le =
          static_cast<double>(HistogramSnapshot::bucket_upper(b)) * scale;
      fam.lines.push_back(name + "_bucket" +
                          with_label(labels, "le=\"" + fmt(le) + "\"") + " " +
                          std::to_string(cumulative));
    }
    fam.lines.push_back(name + "_bucket" + with_label(labels, "le=\"+Inf\"") +
                        " " + std::to_string(h.count));
    fam.lines.push_back(name + "_sum" + braced(labels) + " " +
                        fmt(static_cast<double>(h.sum) * scale));
    fam.lines.push_back(name + "_count" + braced(labels) + " " +
                        std::to_string(h.count));
  }
}

void PrometheusRenderer::add_sample(const std::string& raw, const char* type,
                                    double value, const std::string& labels) {
  bool is_ns = false;
  std::string name = family_name(raw, &is_ns);
  if (is_ns) value /= 1e9;
  if (std::string(type) == "counter") name += "_total";
  family(name, type).lines.push_back(name + braced(labels) + " " + fmt(value));
}

std::string PrometheusRenderer::render() const {
  std::string out;
  for (const std::string& name : order_) {
    const Family& fam = families_.at(name);
    out += "# TYPE " + name + " " + fam.type + "\n";
    for (const std::string& line : fam.lines) out += line + "\n";
  }
  return out;
}

void render_prometheus(const Snapshot& snapshot, const std::string& labels,
                       std::string& out) {
  PrometheusRenderer renderer;
  renderer.add(snapshot, labels);
  out += renderer.render();
}

}  // namespace specure::obs
