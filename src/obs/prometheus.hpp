// Prometheus text-exposition rendering of a metrics Snapshot (the serve
// daemon's `metrics` verb and the per-tenant metrics.prom stamps).
//
// Name mapping is mechanical so every registered instrument is exported
// without a hand-maintained table:
//   counter   "stage/merge_ns"   -> specure_stage_merge_seconds_total
//   counter   "campaign/iterations" -> specure_campaign_iterations_total
//   gauge     "campaign/covered_pdlc" -> specure_campaign_covered_pdlc
//   histogram "hist/queue_wait_ns" -> specure_queue_wait_seconds bucket
//             series (cumulative "le" in seconds) + _sum + _count
// A "_ns" suffix marks nanosecond instruments; they are exported in
// seconds per Prometheus convention. `labels` (e.g. `id="c0001"`) is
// spliced into every series verbatim.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace specure::obs {

/// Accumulates snapshots (each under its own label set) and renders one
/// well-formed exposition: every family's samples grouped under a single
/// `# TYPE` line, families in first-seen order. This is what makes the
/// daemon's multi-tenant exposition valid — N tenants share the family
/// names and differ only in their `id` label.
class PrometheusRenderer {
 public:
  /// Add every series of `snapshot` under `labels` (either empty or a
  /// comma-separated list of already-escaped label pairs).
  void add(const Snapshot& snapshot, const std::string& labels);

  /// Add one ad-hoc sample (daemon-level gauges computed at render
  /// time). `family` is the raw registry-style name ("daemon/tenants"),
  /// mapped exactly like registered instruments.
  void add_sample(const std::string& family, const char* type, double value,
                  const std::string& labels);

  std::string render() const;

 private:
  struct Family {
    std::string type;                ///< "counter" | "gauge" | "histogram"
    std::vector<std::string> lines;  ///< rendered sample lines
  };

  Family& family(const std::string& name, const char* type);

  std::vector<std::string> order_;  ///< first-seen family order
  std::map<std::string, Family> families_;
};

/// One-snapshot convenience: append the snapshot's series to `out`.
void render_prometheus(const Snapshot& snapshot, const std::string& labels,
                       std::string& out);

}  // namespace specure::obs
