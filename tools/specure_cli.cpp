// specure — command-line driver for the library.
//
// Subcommands:
//   specure run [SPEC.toml] [--preset NAME] [key=value ...]
//       Run one campaign from a spec file or a named preset, with
//       key=value overrides (e.g. rob_entries=32 feedback=codecov).
//       --iters/--seed are sugar for iterations=/seed=. --save FILE
//       writes the resolved spec; --dry-run prints it and exits; --json
//       FILE writes the JSON report (spec embedded). Exits 2 on findings.
//   specure sweep --preset A --preset B ... [--spec FILE ...] [key=value ...]
//       Run several scenarios concurrently and print a comparison table
//       (coverage, vulns, iters/sec). Overrides apply to every scenario.
//   specure triage REPORT.json|SPEC.toml [--out DIR] [--jobs N] [--json F]
//       Post-campaign finding triage: minimize every finding down to the
//       smallest program reproducing the same leakage signature and
//       (with --out) write one repro bundle (repro.S / repro.toml /
//       repro.vcd) per unique signature. A .json input is a report from
//       `specure run --json` (campaign skipped, findings triaged
//       directly); a .toml input runs the campaign first. Exits 1 when a
//       finding fails to reproduce or a bundle fails verification.
//   specure presets [--keys]
//       List the named scenario presets (and, with --keys, every
//       key=value override the spec layer accepts).
//   specure fuzz [--iters N] [--seed S] ...   (deprecated: use `run`)
//       The pre-spec flat-flag interface, kept for one release.
//   specure offline [--mwait] [--zenbleed] [--dot FILE] [--verilog FILE]
//       Run the offline phase on MiniBOOM; print IFG/PDLC statistics.
//   specure audit FILE.v --top MODULE [--dot FILE]
//       Offline phase over external Verilog: list every PDLC.
//   specure disasm HEXWORD [PC]
//       Decode one instruction word.
//
// Unknown flags, subcommands, spec keys and preset names are rejected
// with a non-zero exit and a "did you mean" hint — nothing is silently
// ignored. Usage errors exit 64; runtime failures exit 1; campaigns that
// found vulnerabilities exit 2 (for CI).
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/offline.hpp"
#include "core/report.hpp"
#include "core/session.hpp"
#include "core/specure.hpp"
#include "core/sweep.hpp"
#include "riscv/disasm.hpp"
#include "serve/campaign_state.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "sim/structure.hpp"
#include "triage/triage.hpp"
#include "util/fs.hpp"
#include "util/strings.hpp"

namespace {

using namespace specure;

constexpr int kExitOk = 0;
constexpr int kExitError = 1;
constexpr int kExitFindings = 2;
constexpr int kExitUsage = 64;

// ------------------------------------------------------------ option parser --

struct FlagDef {
  const char* name;
  bool takes_value;
  const char* help;
  bool repeatable = false;  ///< may appear more than once (sweep scenarios)
};

struct Args {
  std::vector<std::string> positional;  ///< non-flag, non-override tokens
  std::vector<std::string> overrides;   ///< key=value tokens, in order
  std::vector<std::pair<std::string, std::string>> options;

  bool has(const std::string& flag) const {
    for (const auto& [k, v] : options) {
      if (k == flag) return true;
    }
    return false;
  }
  std::string get(const std::string& flag,
                  const std::string& fallback = "") const {
    for (const auto& [k, v] : options) {
      if (k == flag) return v;
    }
    return fallback;
  }
  std::vector<std::string> get_all(const std::string& flag) const {
    std::vector<std::string> values;
    for (const auto& [k, v] : options) {
      if (k == flag) values.push_back(v);
    }
    return values;
  }
};

/// Parse argv[first..) against the command's flag table. Returns false
/// (after printing the error and hint) on unknown flags or missing
/// values. `allow_overrides` routes bare key=value tokens to overrides.
bool parse_args(int argc, char** argv, int first,
                const std::vector<FlagDef>& flags, bool allow_overrides,
                Args& args) {
  for (int i = first; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      if (allow_overrides && token.find('=') != std::string::npos) {
        args.overrides.push_back(token);
      } else {
        args.positional.push_back(token);
      }
      continue;
    }
    // --flag or --flag=value
    std::string name = token;
    std::string inline_value;
    bool has_inline = false;
    const std::size_t eq = token.find('=');
    if (eq != std::string::npos) {
      name = token.substr(0, eq);
      inline_value = token.substr(eq + 1);
      has_inline = true;
    }
    const FlagDef* def = nullptr;
    for (const FlagDef& f : flags) {
      if (name == f.name) def = &f;
    }
    if (def == nullptr) {
      std::string msg = "unknown flag '" + name + "'";
      std::vector<std::string> names;
      for (const FlagDef& f : flags) names.emplace_back(f.name);
      const std::string hint = util::closest_match(name, names);
      if (!hint.empty()) msg += " — did you mean '" + hint + "'?";
      std::fprintf(stderr, "specure: %s\n", msg.c_str());
      return false;
    }
    if (!def->repeatable && args.has(name)) {
      std::fprintf(stderr,
                   "specure: flag '%s' given more than once\n", name.c_str());
      return false;
    }
    if (def->takes_value) {
      if (has_inline) {
        args.options.emplace_back(name, inline_value);
      } else if (i + 1 < argc) {
        args.options.emplace_back(name, argv[++i]);
      } else {
        std::fprintf(stderr, "specure: flag '%s' needs a value (%s)\n",
                     name.c_str(), def->help);
        return false;
      }
    } else {
      if (has_inline) {
        std::fprintf(stderr, "specure: flag '%s' takes no value\n",
                     name.c_str());
        return false;
      }
      args.options.emplace_back(name, "");
    }
  }
  return true;
}

// ------------------------------------------------------------- spec helpers --

/// Apply the --iters/--seed sugar plus every key=value override, in order.
void apply_common_overrides(core::CampaignSpec& spec, const Args& args) {
  if (args.has("--iters")) spec.set("iterations", args.get("--iters"));
  if (args.has("--seed")) spec.set("seed", args.get("--seed"));
  if (args.has("--jobs")) spec.set("jobs", args.get("--jobs"));
  if (args.has("--batch")) spec.set("batch", args.get("--batch"));
  for (const std::string& assignment : args.overrides) {
    spec.apply_override(assignment);
  }
}

/// Attach the standard progress/vuln/triage stderr feed to a session.
void attach_console_observers(core::Session& session, bool quiet) {
  if (quiet) return;
  session.on_progress([](const core::ProgressEvent& e) {
    std::fprintf(stderr,
                 "[specure] iter %llu/%llu  lp=%zu  cov=%zu  vulns=%zu\n",
                 static_cast<unsigned long long>(e.iteration),
                 static_cast<unsigned long long>(e.budget_iterations),
                 e.covered_pdlc, e.coverage_points, e.vulns);
  });
  session.on_vuln([](const core::VulnEvent& e) {
    std::fprintf(stderr, "[specure] new finding at iteration %llu: %s\n",
                 static_cast<unsigned long long>(e.iteration),
                 core::finding_key(e.report).c_str());
  });
  session.on_finding_minimized([](const triage::MinimizedEvent& e) {
    if (!e.reproduced) {
      std::fprintf(stderr, "[specure] triage %s: signature did not reproduce\n",
                   e.digest.c_str());
      return;
    }
    std::fprintf(stderr,
                 "[specure] triage %s: %zu -> %zu instructions (%zu probes)%s\n",
                 e.digest.c_str(), e.original_len, e.minimized_len, e.probes,
                 e.bundle_dir.empty()
                     ? ""
                     : (e.verified ? ", bundle verified"
                                   : ", BUNDLE FAILED VERIFICATION"));
  });
}

/// Shared tail of run/fuzz: text report, optional JSON, exit code.
int report_and_exit_code(const core::CampaignResult& result,
                         const core::CampaignSpec& spec,
                         const core::Session& session, const Args& args) {
  core::write_text_report(std::cout, result, &spec);
  std::printf("\n(jobs: %zu, batch size: %zu)\n", session.resolved_jobs(),
              spec.batch_size);
  if (args.has("--stats")) {
    const core::PipelineStats& stats = session.pipeline_stats();
    std::printf("\nPipeline stages (wall-clock)\n");
    std::printf("  merger: generate %.3fs  merge %.3fs  result-wait %.3fs"
                "  vcd %.3fs\n",
                stats.generate_seconds, stats.merge_seconds,
                stats.result_wait_seconds, stats.vcd_seconds);
    for (std::size_t w = 0; w < stats.workers.size(); ++w) {
      const core::PipelineWorkerStats& ws = stats.workers[w];
      std::printf("  worker %zu: %llu jobs  execute %.3fs  queue-wait %.3fs"
                  "  fast-cycles %llu  handoffs %llu  tier-fallbacks %llu\n",
                  w, static_cast<unsigned long long>(ws.jobs),
                  ws.execute_seconds, ws.queue_wait_seconds,
                  static_cast<unsigned long long>(ws.fast_cycles),
                  static_cast<unsigned long long>(ws.handoffs),
                  static_cast<unsigned long long>(ws.tier_fallbacks));
    }
    // Latency percentiles from the session's metrics registry (log2
    // histogram estimates; registered unless the spec set metrics=false).
    const obs::Snapshot snap = session.metrics_snapshot();
    const auto percentile_row = [&snap](const char* label,
                                        const char* name) {
      const obs::HistogramSnapshot* h = snap.histogram(name);
      if (h == nullptr || h->count == 0) return;
      std::printf("    %-11s p50 %9.3fms  p95 %9.3fms  p99 %9.3fms"
                  "  (%llu samples)\n",
                  label, h->percentile(50) / 1e6, h->percentile(95) / 1e6,
                  h->percentile(99) / 1e6,
                  static_cast<unsigned long long>(h->count));
    };
    if (snap.histogram("hist/execute_ns") != nullptr) {
      std::printf("  latency percentiles\n");
      percentile_row("execute", "hist/execute_ns");
      percentile_row("queue-wait", "hist/queue_wait_ns");
      percentile_row("result-wait", "hist/result_wait_ns");
      percentile_row("iteration", "hist/iter_latency_ns");
    }
  }
  if (const triage::TriageReport* triaged = session.triage_report()) {
    std::printf("\nTriage (%zu findings, %zu probes, %.3fs)\n",
                triaged->findings.size(), triaged->probes_total,
                triaged->seconds);
    triage::write_triage_table(std::cout, *triaged);
  }
  if (args.has("--json")) {
    std::ofstream json(args.get("--json"));
    if (!json) {
      std::fprintf(stderr, "specure: cannot open %s\n",
                   args.get("--json").c_str());
      return kExitError;
    }
    core::write_json_report(json, result, 64, &spec);
    std::printf("\nJSON report written to %s\n", args.get("--json").c_str());
  }
  return result.vulns.empty() ? kExitOk : kExitFindings;
}

// ----------------------------------------------------- SIGINT/SIGTERM stop --

/// The Session the signal handler pauses (set only while run() executes).
std::atomic<core::Session*> g_signal_session{nullptr};
std::atomic<int> g_signal_count{0};

/// First SIGINT/SIGTERM: ask the campaign to pause at its next merge
/// boundary (request_pause is one relaxed atomic store — async-signal-
/// safe). Second signal: force-quit with the conventional 128+SIGINT.
extern "C" void on_stop_signal(int) {
  if (g_signal_count.fetch_add(1, std::memory_order_relaxed) >= 1) {
    _exit(130);
  }
  if (core::Session* session =
          g_signal_session.load(std::memory_order_relaxed)) {
    session->request_pause();
  }
  const char msg[] =
      "\n[specure] stopping at the next merge boundary (again to force-quit)\n";
  const ssize_t ignored = ::write(2, msg, sizeof(msg) - 1);
  (void)ignored;
}

void install_stop_handler() {
  struct sigaction sa {};
  sa.sa_handler = on_stop_signal;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

// ---------------------------------------------------------------- commands --

const std::vector<FlagDef> kRunFlags = {
    {"--preset", true, "named scenario preset (see `specure presets`)"},
    {"--iters", true, "iteration budget (sugar for iterations=N)"},
    {"--seed", true, "campaign RNG seed (sugar for seed=S)"},
    {"--jobs", true, "worker threads, 0 = all hardware (sugar for jobs=N)"},
    {"--batch", true, "batch size (sugar for batch=B)"},
    {"--json", true, "write the JSON report (spec embedded) to FILE"},
    {"--save", true, "write the resolved spec as TOML to FILE"},
    {"--vcd-out", true,
     "write a VCD waveform per confirmed vulnerability window into DIR"},
    {"--state-out", true,
     "write the durable campaign state to FILE (sugar for state_out=)"},
    {"--state-interval", true,
     "seconds between cadence state writes (sugar for state_interval=)"},
    {"--resume", true, "resume a campaign from a state FILE"},
    {"--trace-out", true,
     "write a Chrome/Perfetto trace of the pipeline to FILE "
     "(sugar for trace_out=)"},
    {"--dry-run", false, "print the resolved spec and exit"},
    {"--quiet", false, "suppress the progress/finding feed"},
    {"--stats", false, "print per-stage pipeline timing after the campaign"},
};

/// A --vcd-out directory must exist (or be creatable) and be writable
/// before the campaign starts — a late ENOENT would waste the whole run.
bool vcd_dir_writable(const std::string& dir) {
  return util::ensure_dir_writable(dir).empty();
}

int cmd_run(const Args& args) {
  if (args.positional.size() > 1) {
    std::fprintf(stderr, "specure: run takes at most one spec file, got %zu\n",
                 args.positional.size());
    return kExitUsage;
  }
  if (!args.positional.empty() && args.has("--preset")) {
    std::fprintf(stderr,
                 "specure: give either a spec file or --preset, not both\n");
    return kExitUsage;
  }
  const bool resuming = args.has("--resume");
  if (resuming && (!args.positional.empty() || args.has("--preset"))) {
    std::fprintf(stderr,
                 "specure: --resume carries its own spec — drop the spec "
                 "file/--preset (result-neutral overrides still apply)\n");
    return kExitUsage;
  }
  serve::CampaignState state;
  if (resuming) state = serve::load_state_file(args.get("--resume"));
  core::CampaignSpec spec =
      resuming                 ? state.spec
      : !args.positional.empty() ? core::CampaignSpec::load(args.positional[0])
      : args.has("--preset")   ? core::CampaignSpec::preset(args.get("--preset"))
                               : core::CampaignSpec{};
  apply_common_overrides(spec, args);
  // After the overrides so `--vcd-out DIR` wins over a stray vcd_out= key
  // and the validated directory is the one that gets used. A vcd_out set
  // only via spec file / override is checked by Session::run() instead
  // (same exit code: SpecError -> 64).
  if (args.has("--vcd-out")) {
    const std::string dir = args.get("--vcd-out");
    if (!vcd_dir_writable(dir)) {
      std::fprintf(stderr,
                   "specure: --vcd-out directory '%s' is not writable\n",
                   dir.c_str());
      return kExitUsage;
    }
    spec.set("vcd_out", dir);
  }
  if (args.has("--state-out")) spec.set("state_out", args.get("--state-out"));
  if (args.has("--state-interval")) {
    spec.set("state_interval", args.get("--state-interval"));
  }
  if (args.has("--trace-out")) spec.set("trace_out", args.get("--trace-out"));
  spec.validate();
  if (resuming) {
    // Guards the bit-identity contract: only result-neutral keys (jobs,
    // pipeline, output paths, intervals) may differ from the stored spec.
    spec = serve::resume_spec(state, spec);
  }

  if (args.has("--save")) {
    spec.save(args.get("--save"));
    std::printf("spec written to %s\n", args.get("--save").c_str());
  }
  if (args.has("--dry-run")) {
    std::fputs(spec.to_toml().c_str(), stdout);
    return kExitOk;
  }

  core::Session session(spec);
  attach_console_observers(session, args.has("--quiet"));
  if (!spec.state_out.empty()) {
    session.on_frontier(
        [&spec](const core::CampaignFrontier& f) {
          serve::save_state_file(spec.state_out, spec, f);
        },
        spec.state_interval);
  }
  if (resuming) session.resume_from(std::move(state.frontier));

  // SIGINT/SIGTERM stop the campaign at its next merge boundary; the run
  // still reports, triages and (with state_out) stays resumable.
  g_signal_session.store(&session, std::memory_order_relaxed);
  install_stop_handler();
  const core::CampaignResult result = session.run();
  g_signal_session.store(nullptr, std::memory_order_relaxed);

  if (session.paused()) {
    std::fprintf(stderr,
                 "[specure] interrupted after %zu iterations — partial "
                 "report follows%s\n",
                 result.history.size(),
                 spec.state_out.empty()
                     ? " (no state_out configured: not resumable)"
                     : ("; resume with `specure run --resume " +
                        spec.state_out + "`")
                           .c_str());
    // Partial side outputs (VCD waveforms, triage) without consuming the
    // pause frontier — the state file keeps pointing at a resumable spot.
    session.finalize_interrupted();
  }
  return report_and_exit_code(result, spec, session, args);
}

const std::vector<FlagDef> kSweepFlags = {
    {"--preset", true, "add a scenario by preset name (repeatable)", true},
    {"--spec", true, "add a scenario from a TOML spec file (repeatable)", true},
    {"--iters", true, "iteration budget applied to every scenario"},
    {"--seed", true, "RNG seed applied to every scenario"},
    {"--jobs", true, "simulation workers per scenario"},
    {"--batch", true, "batch size applied to every scenario"},
    {"--concurrency", true, "scenarios run at once (0 = hardware threads)"},
    {"--json", true, "write the comparison as JSON to FILE"},
    {"--quiet", false, "suppress the per-scenario completion feed"},
};

int cmd_sweep(const Args& args) {
  core::Sweep sweep;
  // Scenario order = command-line order across both flags.
  for (const auto& [flag, value] : args.options) {
    if (flag == "--preset") {
      core::CampaignSpec spec = core::CampaignSpec::preset(value);
      apply_common_overrides(spec, args);
      spec.validate();
      sweep.add(std::move(spec));
    } else if (flag == "--spec") {
      core::CampaignSpec spec = core::CampaignSpec::load(value);
      apply_common_overrides(spec, args);
      spec.validate();
      sweep.add(std::move(spec));
    }
  }
  if (sweep.size() == 0) {
    std::fprintf(stderr,
                 "specure: sweep needs at least one --preset or --spec\n");
    return kExitUsage;
  }
  if (!args.has("--quiet")) {
    const std::size_t total = sweep.size();
    sweep.on_scenario_done([total](std::size_t index,
                                   const core::SweepOutcome& row) {
      if (row.ok()) {
        std::fprintf(stderr, "[sweep] scenario %zu (%s) done: %zu iters, "
                             "%zu vulns\n",
                     index + 1, row.spec.name.c_str(),
                     row.result.history.size(), row.result.vulns.size());
      } else {
        std::fprintf(stderr, "[sweep] scenario %zu (%s) FAILED: %s\n",
                     index + 1, row.spec.name.c_str(), row.error.c_str());
      }
      (void)total;
    });
  }
  const std::size_t concurrency = static_cast<std::size_t>(
      std::strtoull(args.get("--concurrency", "0").c_str(), nullptr, 10));
  const auto rows = sweep.run(concurrency);

  std::printf("Specure sweep: %zu scenarios\n\n", rows.size());
  core::Sweep::write_table(std::cout, rows);
  if (args.has("--json")) {
    std::ofstream json(args.get("--json"));
    if (!json) {
      std::fprintf(stderr, "specure: cannot open %s\n",
                   args.get("--json").c_str());
      return kExitError;
    }
    core::Sweep::write_json(json, rows);
    std::printf("\nJSON comparison written to %s\n",
                args.get("--json").c_str());
  }
  for (const auto& row : rows) {
    if (!row.ok()) return kExitError;
  }
  return kExitOk;
}

const std::vector<FlagDef> kTriageFlags = {
    {"--out", true, "write one repro bundle per unique signature into DIR"},
    {"--jobs", true, "probe workers for minimization, 0 = all hardware"},
    {"--json", true, "write the triage summary as JSON to FILE"},
    {"--quiet", false, "suppress the per-finding feed"},
};

int cmd_triage(const Args& args) {
  if (args.positional.size() != 1) {
    std::fprintf(stderr,
                 "usage: specure triage REPORT.json|SPEC.toml [--out DIR] "
                 "[--jobs N] [--json F] [key=value ...]\n");
    return kExitUsage;
  }
  const std::string& input = args.positional[0];
  const std::size_t jobs = static_cast<std::size_t>(
      std::strtoull(args.get("--jobs", "0").c_str(), nullptr, 10));

  triage::TriageReport triaged;
  if (input.size() > 5 && input.substr(input.size() - 5) == ".json") {
    // Triage an existing report: no campaign, straight to minimization.
    std::ifstream in(input);
    if (!in) {
      std::fprintf(stderr, "specure: cannot open %s\n", input.c_str());
      return kExitError;
    }
    core::ParsedReport report = core::parse_json_report(in);
    if (!report.has_spec) {
      std::fprintf(stderr,
                   "specure: %s carries no spec object — regenerate with "
                   "`specure run --json`\n",
                   input.c_str());
      return kExitUsage;
    }
    for (const std::string& assignment : args.overrides) {
      report.spec.apply_override(assignment);
    }
    report.spec.validate();
    if (report.findings.empty()) {
      std::printf("no findings in %s — nothing to triage\n", input.c_str());
      return kExitOk;
    }
    std::vector<triage::TriageInput> inputs;
    for (auto& f : report.findings) {
      inputs.push_back({std::move(f.signature), std::move(f.program)});
    }
    triage::TriageOptions options;
    options.mode = args.has("--out") ? core::TriageMode::kFull
                                     : core::TriageMode::kOn;
    options.out_dir = args.get("--out");
    options.jobs = jobs;
    const bool quiet = args.has("--quiet");
    const core::OfflineResult offline =
        core::run_offline_phase(report.spec.core, report.spec.pdlc);
    triaged = triage::run_triage(
        report.spec, offline, inputs, options,
        [quiet](const triage::MinimizedEvent& e) {
          if (quiet) return;
          std::fprintf(stderr, "[triage] %s: %zu -> %zu instructions\n",
                       e.digest.c_str(), e.original_len, e.minimized_len);
        });
  } else {
    // Spec input: run the campaign, then triage its findings in-session.
    core::CampaignSpec spec = core::CampaignSpec::load(input);
    apply_common_overrides(spec, args);
    spec.triage = args.has("--out") ? core::TriageMode::kFull
                                    : core::TriageMode::kOn;
    if (args.has("--out")) spec.triage_out = args.get("--out");
    spec.validate();
    core::Session session(spec);
    attach_console_observers(session, args.has("--quiet"));
    const core::CampaignResult result = session.run();
    if (result.vulns.empty()) {
      std::printf("campaign found nothing to triage (%zu iterations)\n",
                  result.history.size());
      return kExitOk;
    }
    if (session.triage_report() != nullptr) {
      triaged = *session.triage_report();
    }
  }

  std::printf("Specure triage: %zu unique signatures, %zu probes\n\n",
              triaged.findings.size(), triaged.probes_total);
  triage::write_triage_table(std::cout, triaged);
  if (args.has("--json")) {
    std::ofstream json(args.get("--json"));
    if (!json) {
      std::fprintf(stderr, "specure: cannot open %s\n",
                   args.get("--json").c_str());
      return kExitError;
    }
    triage::write_triage_json(json, triaged);
    std::printf("\nJSON triage summary written to %s\n",
                args.get("--json").c_str());
  }
  for (const triage::TriagedFinding& f : triaged.findings) {
    if (!f.reproduced) return kExitError;
    if (!f.bundle_dir.empty() && !f.verified) return kExitError;
  }
  return kExitOk;
}

const std::vector<FlagDef> kPresetsFlags = {
    {"--keys", false, "also list every key=value override key"},
};

int cmd_presets(const Args& args) {
  std::printf("Scenario presets (specure run --preset NAME):\n");
  for (const core::PresetInfo& info : core::CampaignSpec::presets()) {
    std::printf("  %-14s %s\n", info.name.c_str(), info.description.c_str());
  }
  if (args.has("--keys")) {
    std::printf("\nOverride keys (key=value, e.g. rob_entries=32):\n");
    core::CampaignSpec defaults;
    for (const core::SpecField& f : defaults.fields()) {
      std::printf("  %-28s default: %s\n", f.key.c_str(), f.value.c_str());
    }
  } else {
    std::printf("\n(`specure presets --keys` lists the override keys)\n");
  }
  return kExitOk;
}

const std::vector<FlagDef> kFuzzFlags = {
    {"--iters", true, "iteration budget"},
    {"--seed", true, "campaign RNG seed"},
    {"--mwait", false, "arm the (M)WAIT emulation"},
    {"--zenbleed", false, "arm the Zenbleed emulation"},
    {"--monitor-cache", false, "add the data cache to the monitored sinks"},
    {"--feedback", true, "feedback mode: lp | codecov"},
    {"--jobs", true, "worker threads, 0 = all hardware"},
    {"--batch", true, "batch size"},
    {"--stop-after-vulns", true, "stop after N distinct findings"},
    {"--json", true, "write the JSON report to FILE"},
    {"--no-special-seeds", false, "disable the §3.2 transient-window seeds"},
    {"--quiet", false, "suppress the progress feed"},
    {"--stats", false, "print per-stage pipeline timing after the campaign"},
};

int cmd_fuzz(const Args& args) {
  std::fprintf(stderr,
               "note: `specure fuzz` is deprecated; use `specure run` "
               "(same behaviour, declarative specs)\n");
  core::CampaignSpec spec;
  spec.name = "fuzz";
  spec.budget.iterations = 1000;
  spec.core.vuln.mwait_emulation = args.has("--mwait");
  spec.core.vuln.zenbleed_emulation = args.has("--zenbleed");
  spec.detector.monitor_cache = args.has("--monitor-cache");
  spec.fuzzer.use_special_seeds = !args.has("--no-special-seeds");
  if (args.has("--feedback")) spec.set("feedback", args.get("--feedback"));
  if (args.has("--stop-after-vulns")) {
    spec.set("max_vulns", args.get("--stop-after-vulns"));
  }
  apply_common_overrides(spec, args);
  spec.validate();

  core::Session session(spec);
  attach_console_observers(session, args.has("--quiet"));
  const core::CampaignResult result = session.run();
  return report_and_exit_code(result, spec, session, args);
}

const std::vector<FlagDef> kOfflineFlags = {
    {"--mwait", false, "arm the (M)WAIT emulation"},
    {"--zenbleed", false, "arm the Zenbleed emulation"},
    {"--dot", true, "dump the IFG as Graphviz to FILE"},
    {"--verilog", true, "dump the structural Verilog to FILE"},
};

int cmd_offline(const Args& args) {
  sim::CoreConfig cfg;
  cfg.vuln.mwait_emulation = args.has("--mwait");
  cfg.vuln.zenbleed_emulation = args.has("--zenbleed");
  const core::OfflineResult off = core::run_offline_phase(cfg);
  std::printf("IFG: %zu signals, %zu flow edges (%.4fs)\n",
              off.ifg.node_count(), off.ifg.edge_count(), off.ifg_seconds);
  std::printf("PDLC: %zu channels (%.4fs)\n", off.pdlc.size(),
              off.pdlc_seconds);
  if (args.has("--dot")) {
    std::ofstream dot(args.get("--dot"));
    if (!dot) {
      std::fprintf(stderr, "specure: cannot open %s\n",
                   args.get("--dot").c_str());
      return kExitError;
    }
    off.ifg.write_dot(dot);
    std::printf("IFG written to %s\n", args.get("--dot").c_str());
  }
  if (args.has("--verilog")) {
    std::ofstream v(args.get("--verilog"));
    if (!v) {
      std::fprintf(stderr, "specure: cannot open %s\n",
                   args.get("--verilog").c_str());
      return kExitError;
    }
    v << sim::emit_structural_verilog(cfg);
    std::printf("structural Verilog written to %s\n",
                args.get("--verilog").c_str());
  }
  return kExitOk;
}

const std::vector<FlagDef> kAuditFlags = {
    {"--top", true, "top module name"},
    {"--dot", true, "dump the IFG as Graphviz to FILE"},
};

int cmd_audit(const Args& args) {
  if (args.positional.empty() || !args.has("--top")) {
    std::fprintf(stderr, "usage: specure audit FILE.v --top MODULE\n");
    return kExitUsage;
  }
  std::ifstream in(args.positional[0]);
  if (!in) {
    std::fprintf(stderr, "specure: cannot open %s\n",
                 args.positional[0].c_str());
    return kExitError;
  }
  std::string source((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
  const core::OfflineResult off = core::run_offline_phase_rtl(
      source, args.get("--top"), ift::ArchRegDb::riscv());
  std::printf("IFG: %zu signals, %zu flow edges\n", off.ifg.node_count(),
              off.ifg.edge_count());
  std::printf("PDLC channels (%zu):\n", off.pdlc.size());
  for (const auto& ch : off.pdlc.channels()) {
    std::printf("  %s", off.ifg.node(ch.source).name.c_str());
    for (std::size_t i = 1; i < ch.path.size(); ++i) {
      std::printf(" -> %s", off.ifg.node(ch.path[i]).name.c_str());
    }
    std::printf("\n");
  }
  if (args.has("--dot")) {
    std::ofstream dot(args.get("--dot"));
    off.ifg.write_dot(dot);
  }
  return kExitOk;
}

int cmd_disasm(const Args& args) {
  if (args.positional.empty()) {
    std::fprintf(stderr, "usage: specure disasm HEXWORD [PC]\n");
    return kExitUsage;
  }
  const std::uint32_t word = static_cast<std::uint32_t>(
      std::strtoull(args.positional[0].c_str(), nullptr, 16));
  const std::uint64_t pc =
      args.positional.size() > 1
          ? std::strtoull(args.positional[1].c_str(), nullptr, 16)
          : riscv::kCodeBase;
  std::printf("%08x: %s\n", word, riscv::disassemble(word, pc).c_str());
  return kExitOk;
}

// -------------------------------------------------- campaign-as-a-service --

constexpr const char* kDefaultSocket = "specure.sock";
constexpr const char* kDefaultStore = "specure-store";

const std::vector<FlagDef> kServeFlags = {
    {"--socket", true, "Unix-domain socket to listen on (default specure.sock)"},
    {"--store", true, "campaign store directory (default specure-store)"},
    {"--workers", true, "shared pool threads, 0 = all hardware"},
    {"--slice", true, "fair-scheduling quantum in iterations (default 32)"},
    {"--state-interval", true,
     "extra state-write cadence in seconds (0 = slice boundaries only)"},
};

int cmd_serve(const Args& args) {
  serve::ServerOptions options;
  options.socket_path = args.get("--socket", kDefaultSocket);
  options.store_root = args.get("--store", kDefaultStore);
  options.workers = static_cast<std::size_t>(
      std::strtoull(args.get("--workers", "0").c_str(), nullptr, 10));
  options.slice_iterations =
      std::strtoull(args.get("--slice", "32").c_str(), nullptr, 10);
  options.state_interval =
      std::strtod(args.get("--state-interval", "0").c_str(), nullptr);

  // Block the stop signals before the server spawns any thread (the mask
  // is inherited), then watch for them next to the serving thread:
  // Server::shutdown() takes locks, so it must not run inside a handler.
  sigset_t stop_set;
  ::sigemptyset(&stop_set);
  ::sigaddset(&stop_set, SIGINT);
  ::sigaddset(&stop_set, SIGTERM);
  ::pthread_sigmask(SIG_BLOCK, &stop_set, nullptr);

  serve::Server server(std::move(options));
  std::fprintf(stderr, "[specure] serving on %s (store %s, %zu workers)\n",
               server.options().socket_path.c_str(),
               server.options().store_root.c_str(),
               server.options().workers != 0
                   ? server.options().workers
                   : static_cast<std::size_t>(
                         std::thread::hardware_concurrency()));
  std::atomic<bool> done{false};
  std::thread serving([&server, &done] {
    server.run();
    done.store(true, std::memory_order_relaxed);
  });
  bool asked = false;
  const timespec tick{0, 200 * 1000 * 1000};
  while (!done.load(std::memory_order_relaxed)) {
    const int sig = ::sigtimedwait(&stop_set, nullptr, &tick);
    if (sig <= 0) continue;
    if (asked) _exit(130);
    asked = true;
    std::fprintf(stderr,
                 "[specure] caught signal: campaigns pause at their next "
                 "merge boundary and persist (again to force-quit)\n");
    server.shutdown();
  }
  serving.join();
  std::fprintf(stderr, "[specure] daemon stopped; campaigns resume on the "
                       "next `specure serve --store %s`\n",
               server.options().store_root.c_str());
  return kExitOk;
}

const std::vector<FlagDef> kClientFlags = {
    {"--socket", true, "daemon socket path (default specure.sock)"},
};

const std::vector<FlagDef> kSubmitFlags = {
    {"--socket", true, "daemon socket path (default specure.sock)"},
    {"--preset", true, "submit a named scenario preset instead of a file"},
    {"--iters", true, "iteration budget (sugar for iterations=N)"},
    {"--seed", true, "campaign RNG seed (sugar for seed=S)"},
    {"--batch", true, "batch size (sugar for batch=B)"},
};

const std::vector<FlagDef> kEventsFlags = {
    {"--socket", true, "daemon socket path (default specure.sock)"},
    {"--from", true, "first event index to stream (default 0)"},
    {"--no-follow", false, "dump the log so far and exit instead of tailing"},
};

/// Render a daemon response: errors to stderr (exit 1), otherwise one
/// human-readable line from the well-known fields.
int print_reply(const serve::Json& reply) {
  if (const serve::Json* error = reply.find("error")) {
    std::fprintf(stderr, "specure: %s\n", error->text.c_str());
    return kExitError;
  }
  std::string line;
  if (const serve::Json* id = reply.find("id")) line += id->text;
  if (const serve::Json* status = reply.find("status")) {
    line += (line.empty() ? "" : ": ") + status->text;
  }
  if (const serve::Json* iters = reply.find("iterations")) {
    line += "  iterations=" +
            std::to_string(static_cast<std::uint64_t>(iters->number));
    // Merged-progress against the budget, when the daemon reports one.
    if (const serve::Json* budget = reply.find("budget")) {
      if (budget->number > 0) {
        line +=
            "/" + std::to_string(static_cast<std::uint64_t>(budget->number));
      }
    }
  }
  if (const serve::Json* vulns = reply.find("vulns")) {
    line += "  vulns=" +
            std::to_string(static_cast<std::uint64_t>(vulns->number));
  }
  if (const serve::Json* rate = reply.find("iters_per_sec")) {
    if (rate->number > 0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1f", rate->number);
      line += std::string("  rate=") + buf + " it/s";
    }
  }
  if (const serve::Json* detail = reply.find("detail")) {
    line += "  (" + detail->text + ")";
  }
  std::printf("%s\n", line.empty() ? "ok" : line.c_str());
  return kExitOk;
}

/// Shared body of pause/resume/cancel (and status with an id): one
/// id-addressed verb, one response frame.
int send_id_verb(const char* verb, const Args& args) {
  if (args.positional.size() != 1) {
    std::fprintf(stderr, "usage: specure %s CAMPAIGN_ID [--socket PATH]\n",
                 verb);
    return kExitUsage;
  }
  serve::Client client(args.get("--socket", kDefaultSocket));
  return print_reply(client.request(
      std::string("{\"verb\": \"") + verb + "\", \"id\": \"" +
      serve::escape_json(args.positional[0]) + "\"}"));
}

int cmd_submit(const Args& args) {
  if (args.positional.size() > 1 ||
      (!args.positional.empty() && args.has("--preset"))) {
    std::fprintf(stderr,
                 "usage: specure submit [SPEC.toml | --preset NAME] "
                 "[key=value ...] [--socket PATH]\n");
    return kExitUsage;
  }
  core::CampaignSpec spec =
      !args.positional.empty() ? core::CampaignSpec::load(args.positional[0])
      : args.has("--preset")   ? core::CampaignSpec::preset(args.get("--preset"))
                               : core::CampaignSpec{};
  apply_common_overrides(spec, args);
  spec.validate();  // reject locally before bothering the daemon

  serve::Client client(args.get("--socket", kDefaultSocket));
  const serve::Json reply = client.request(
      "{\"verb\": \"submit\", \"spec\": \"" +
      serve::escape_json(spec.to_toml()) + "\"}");
  if (const serve::Json* error = reply.find("error")) {
    std::fprintf(stderr, "specure: %s\n", error->text.c_str());
    return kExitError;
  }
  const serve::Json* id = reply.find("id");
  std::printf("%s\n", id != nullptr ? id->text.c_str() : "ok");
  return kExitOk;
}

int cmd_status(const Args& args) {
  if (args.positional.size() == 1) return send_id_verb("status", args);
  if (!args.positional.empty()) {
    std::fprintf(stderr,
                 "usage: specure status [CAMPAIGN_ID] [--socket PATH]\n");
    return kExitUsage;
  }
  // No id: list every campaign the daemon knows.
  serve::Client client(args.get("--socket", kDefaultSocket));
  const serve::Json reply = client.request("{\"verb\": \"list\"}");
  if (const serve::Json* error = reply.find("error")) {
    std::fprintf(stderr, "specure: %s\n", error->text.c_str());
    return kExitError;
  }
  const serve::Json* campaigns = reply.find("campaigns");
  if (campaigns == nullptr || campaigns->items.empty()) {
    std::printf("no campaigns\n");
    return kExitOk;
  }
  for (const serve::Json& row : campaigns->items) {
    print_reply(row);
  }
  return kExitOk;
}

int cmd_events(const Args& args) {
  if (args.positional.size() != 1) {
    std::fprintf(stderr,
                 "usage: specure events CAMPAIGN_ID [--from N] "
                 "[--no-follow] [--socket PATH]\n");
    return kExitUsage;
  }
  serve::Client client(args.get("--socket", kDefaultSocket));
  client.send("{\"verb\": \"events\", \"id\": \"" +
              serve::escape_json(args.positional[0]) +
              "\", \"from\": " + args.get("--from", "0") +
              ", \"follow\": " +
              (args.has("--no-follow") ? "false" : "true") + "}");
  std::string raw;
  while (client.next_raw(raw)) {
    std::printf("%s\n", raw.c_str());
    std::fflush(stdout);
    const serve::Json frame = serve::parse_json(raw);
    if (const serve::Json* error = frame.find("error")) {
      std::fprintf(stderr, "specure: %s\n", error->text.c_str());
      return kExitError;
    }
    const serve::Json* event = frame.find("event");
    if (event != nullptr && event->text == "end") return kExitOk;
  }
  std::fprintf(stderr, "specure: daemon closed the event stream\n");
  return kExitError;
}

int cmd_metrics(const Args& args) {
  if (args.positional.size() > 1) {
    std::fprintf(stderr,
                 "usage: specure metrics [CAMPAIGN_ID] [--socket PATH]\n");
    return kExitUsage;
  }
  serve::Client client(args.get("--socket", kDefaultSocket));
  std::string request = "{\"verb\": \"metrics\"";
  if (!args.positional.empty()) {
    request += ", \"id\": \"" + serve::escape_json(args.positional[0]) + "\"";
  }
  request += "}";
  const serve::Json reply = client.request(request);
  if (const serve::Json* error = reply.find("error")) {
    std::fprintf(stderr, "specure: %s\n", error->text.c_str());
    return kExitError;
  }
  const serve::Json* metrics = reply.find("metrics");
  if (metrics == nullptr) {
    std::fprintf(stderr, "specure: daemon reply carried no metrics field\n");
    return kExitError;
  }
  std::fputs(metrics->text.c_str(), stdout);
  return kExitOk;
}

int cmd_pause(const Args& args) { return send_id_verb("pause", args); }
int cmd_resume(const Args& args) { return send_id_verb("resume", args); }
int cmd_cancel(const Args& args) { return send_id_verb("cancel", args); }

int cmd_shutdown(const Args& args) {
  if (!args.positional.empty()) {
    std::fprintf(stderr, "usage: specure shutdown [--socket PATH]\n");
    return kExitUsage;
  }
  serve::Client client(args.get("--socket", kDefaultSocket));
  return print_reply(client.request("{\"verb\": \"shutdown\"}"));
}

// ------------------------------------------------------------------- main --

struct CommandDef {
  const char* name;
  const std::vector<FlagDef>* flags;
  bool allow_overrides;
  int (*handler)(const Args&);
};

const std::vector<CommandDef>& commands() {
  static const std::vector<CommandDef> kCommands = {
      {"run", &kRunFlags, true, cmd_run},
      {"sweep", &kSweepFlags, true, cmd_sweep},
      {"triage", &kTriageFlags, true, cmd_triage},
      {"presets", &kPresetsFlags, false, cmd_presets},
      {"fuzz", &kFuzzFlags, true, cmd_fuzz},
      {"offline", &kOfflineFlags, false, cmd_offline},
      {"audit", &kAuditFlags, false, cmd_audit},
      {"disasm", nullptr, false, cmd_disasm},
      {"serve", &kServeFlags, false, cmd_serve},
      {"submit", &kSubmitFlags, true, cmd_submit},
      {"status", &kClientFlags, false, cmd_status},
      {"metrics", &kClientFlags, false, cmd_metrics},
      {"events", &kEventsFlags, false, cmd_events},
      {"pause", &kClientFlags, false, cmd_pause},
      {"resume", &kClientFlags, false, cmd_resume},
      {"cancel", &kClientFlags, false, cmd_cancel},
      {"shutdown", &kClientFlags, false, cmd_shutdown},
  };
  return kCommands;
}

void usage() {
  std::fprintf(
      stderr,
      "specure <run|sweep|triage|presets|fuzz|offline|audit|disasm|serve|"
      "submit|status|metrics|events|pause|resume|cancel|shutdown> [options]\n"
      "  run [SPEC.toml] [--preset NAME] [key=value ...] [--iters N]\n"
      "      [--seed S] [--json F] [--save F] [--vcd-out DIR] [--dry-run]\n"
      "      [--state-out F] [--state-interval S] [--resume STATE]\n"
      "      [--trace-out F] [--quiet]\n"
      "  sweep (--preset NAME | --spec FILE)... [key=value ...]\n"
      "      [--iters N] [--seed S] [--concurrency N] [--json F] [--quiet]\n"
      "  triage REPORT.json|SPEC.toml [--out DIR] [--jobs N] [--json F]\n"
      "      [key=value ...] [--quiet]\n"
      "  presets [--keys]\n"
      "  fuzz [--iters N] [--seed S] [--mwait] [--zenbleed]\n"
      "      [--monitor-cache] [--feedback lp|codecov] [--jobs N]\n"
      "      [--batch B] [--stop-after-vulns K] [--json F]\n"
      "      [--no-special-seeds] [--quiet]   (deprecated: use `run`)\n"
      "  offline [--mwait] [--zenbleed] [--dot F] [--verilog F]\n"
      "  audit FILE.v --top MODULE [--dot F]\n"
      "  disasm HEXWORD [PC]\n"
      "  serve [--socket PATH] [--store DIR] [--workers N] [--slice N]\n"
      "      [--state-interval S]   (campaign daemon; resumes its store)\n"
      "  submit [SPEC.toml | --preset NAME] [key=value ...] [--socket PATH]\n"
      "  status [CAMPAIGN_ID] [--socket PATH]\n"
      "  metrics [CAMPAIGN_ID] [--socket PATH]   (Prometheus text)\n"
      "  events CAMPAIGN_ID [--from N] [--no-follow] [--socket PATH]\n"
      "  pause|resume|cancel CAMPAIGN_ID [--socket PATH]\n"
      "  shutdown [--socket PATH]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return kExitUsage;
  }
  const std::string cmd = argv[1];
  const CommandDef* def = nullptr;
  for (const CommandDef& c : commands()) {
    if (cmd == c.name) def = &c;
  }
  if (def == nullptr) {
    std::string msg = "unknown command '" + cmd + "'";
    std::vector<std::string> names;
    for (const CommandDef& c : commands()) names.emplace_back(c.name);
    const std::string hint = util::closest_match(cmd, names);
    if (!hint.empty()) msg += " — did you mean '" + hint + "'?";
    std::fprintf(stderr, "specure: %s\n", msg.c_str());
    usage();
    return kExitUsage;
  }

  Args args;
  static const std::vector<FlagDef> kNoFlags;
  if (!parse_args(argc, argv, 2, def->flags ? *def->flags : kNoFlags,
                  def->allow_overrides, args)) {
    return kExitUsage;
  }
  try {
    return def->handler(args);
  } catch (const core::SpecError& e) {
    std::fprintf(stderr, "specure: %s\n", e.what());
    return kExitUsage;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "specure: %s\n", e.what());
    return kExitError;
  }
}
