// specure — command-line driver for the library.
//
// Subcommands:
//   specure offline [--mwait] [--zenbleed] [--dot FILE] [--verilog FILE]
//       Run the offline phase on MiniBOOM; print IFG/PDLC statistics,
//       optionally dump the IFG as Graphviz and the structural Verilog.
//   specure fuzz [--iters N] [--seed S] [--mwait] [--zenbleed]
//                [--monitor-cache] [--feedback lp|codecov]
//                [--jobs N] [--batch B] [--stop-after-vulns K]
//                [--json FILE] [--no-special-seeds] [--quiet]
//       Run a fuzzing campaign and print the text report (JSON optional).
//       --jobs 0 (the default) uses every hardware thread; results are
//       identical for any --jobs value at a fixed --batch.
//   specure audit FILE.v --top MODULE [--dot FILE]
//       Offline phase over external Verilog: list every PDLC.
//   specure disasm HEXWORD [PC]
//       Decode one instruction word (e.g. specure disasm FBEC52E3).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/offline.hpp"
#include "core/report.hpp"
#include "core/specure.hpp"
#include "riscv/disasm.hpp"
#include "sim/structure.hpp"

namespace {

using namespace specure;

struct Args {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> options;

  bool has(const std::string& flag) const {
    for (const auto& [k, v] : options) {
      if (k == flag) return true;
    }
    return false;
  }
  std::string get(const std::string& flag, const std::string& fallback = "") const {
    for (const auto& [k, v] : options) {
      if (k == flag) return v;
    }
    return fallback;
  }
};

Args parse_args(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--", 0) == 0) {
      // Flags taking a value consume the next token when present and not
      // itself a flag.
      std::string value;
      static const char* kValueFlags[] = {
          "--dot",  "--verilog", "--iters", "--seed",
          "--json", "--top",     "--feedback", "--jobs",
          "--batch", "--stop-after-vulns"};
      bool takes_value = false;
      for (const char* f : kValueFlags) takes_value |= a == f;
      if (takes_value && i + 1 < argc) value = argv[++i];
      args.options.emplace_back(a, value);
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

sim::CoreConfig config_from(const Args& args) {
  sim::CoreConfig cfg;
  cfg.vuln.mwait_emulation = args.has("--mwait");
  cfg.vuln.zenbleed_emulation = args.has("--zenbleed");
  return cfg;
}

int cmd_offline(const Args& args) {
  const sim::CoreConfig cfg = config_from(args);
  const core::OfflineResult off = core::run_offline_phase(cfg);
  std::printf("IFG: %zu signals, %zu flow edges (%.4fs)\n",
              off.ifg.node_count(), off.ifg.edge_count(), off.ifg_seconds);
  std::printf("PDLC: %zu channels (%.4fs)\n", off.pdlc.size(),
              off.pdlc_seconds);
  if (args.has("--dot")) {
    std::ofstream dot(args.get("--dot"));
    if (!dot) {
      std::fprintf(stderr, "cannot open %s\n", args.get("--dot").c_str());
      return 1;
    }
    off.ifg.write_dot(dot);
    std::printf("IFG written to %s\n", args.get("--dot").c_str());
  }
  if (args.has("--verilog")) {
    std::ofstream v(args.get("--verilog"));
    if (!v) {
      std::fprintf(stderr, "cannot open %s\n", args.get("--verilog").c_str());
      return 1;
    }
    v << sim::emit_structural_verilog(cfg);
    std::printf("structural Verilog written to %s\n",
                args.get("--verilog").c_str());
  }
  return 0;
}

int cmd_fuzz(const Args& args) {
  core::EngineOptions opts;
  opts.core = config_from(args);
  opts.detector.monitor_cache = args.has("--monitor-cache");
  opts.rng_seed = std::strtoull(args.get("--seed", "1").c_str(), nullptr, 10);
  opts.fuzzer.use_special_seeds = !args.has("--no-special-seeds");
  if (args.get("--feedback", "lp") == "codecov") {
    opts.feedback = core::FeedbackMode::kCodeCoverage;
  }
  const std::uint64_t iters =
      std::strtoull(args.get("--iters", "1000").c_str(), nullptr, 10);
  // 0 = all hardware threads. The batch size is fixed independently of the
  // worker count so results only depend on --seed and --batch, never on
  // --jobs (see core/specure.hpp's determinism contract).
  opts.jobs = std::strtoull(args.get("--jobs", "0").c_str(), nullptr, 10);
  opts.batch_size =
      std::strtoull(args.get("--batch", "32").c_str(), nullptr, 10);
  const std::uint64_t stop_after_vulns =
      std::strtoull(args.get("--stop-after-vulns", "0").c_str(), nullptr, 10);
  const bool quiet = args.has("--quiet");

  core::SpecureEngine engine(opts);
  std::uint64_t last_progress = 0;
  const auto stop = [&](const core::CampaignResult& r) {
    if (!quiet && r.history.size() >= last_progress + 500) {
      last_progress = r.history.size();
      std::fprintf(stderr,
                   "[specure] iter %llu/%llu  lp=%zu  cov=%zu  vulns=%zu\n",
                   static_cast<unsigned long long>(r.history.size()),
                   static_cast<unsigned long long>(iters),
                   r.history.empty() ? 0 : r.history.back().covered_pdlc,
                   r.history.empty() ? 0 : r.history.back().coverage_points,
                   r.vulns.size());
    }
    return stop_after_vulns > 0 && r.vulns.size() >= stop_after_vulns;
  };
  const core::CampaignResult result = engine.run(iters, stop);
  // The report itself carries wall-clock and iterations/sec; the footer
  // only adds the execution shape.
  core::write_text_report(std::cout, result);
  std::printf("\n(jobs: %zu, batch size: %zu)\n", engine.resolved_jobs(),
              opts.batch_size);
  if (args.has("--json")) {
    std::ofstream json(args.get("--json"));
    if (!json) {
      std::fprintf(stderr, "cannot open %s\n", args.get("--json").c_str());
      return 1;
    }
    core::write_json_report(json, result);
    std::printf("\nJSON report written to %s\n", args.get("--json").c_str());
  }
  return result.vulns.empty() ? 0 : 2;  // non-zero exit on findings (CI)
}

int cmd_audit(const Args& args) {
  if (args.positional.empty() || !args.has("--top")) {
    std::fprintf(stderr, "usage: specure audit FILE.v --top MODULE\n");
    return 1;
  }
  std::ifstream in(args.positional[0]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", args.positional[0].c_str());
    return 1;
  }
  std::string source((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
  const core::OfflineResult off = core::run_offline_phase_rtl(
      source, args.get("--top"), ift::ArchRegDb::riscv());
  std::printf("IFG: %zu signals, %zu flow edges\n", off.ifg.node_count(),
              off.ifg.edge_count());
  std::printf("PDLC channels (%zu):\n", off.pdlc.size());
  for (const auto& ch : off.pdlc.channels()) {
    std::printf("  %s", off.ifg.node(ch.source).name.c_str());
    for (std::size_t i = 1; i < ch.path.size(); ++i) {
      std::printf(" -> %s", off.ifg.node(ch.path[i]).name.c_str());
    }
    std::printf("\n");
  }
  if (args.has("--dot")) {
    std::ofstream dot(args.get("--dot"));
    off.ifg.write_dot(dot);
  }
  return 0;
}

int cmd_disasm(const Args& args) {
  if (args.positional.empty()) {
    std::fprintf(stderr, "usage: specure disasm HEXWORD [PC]\n");
    return 1;
  }
  const std::uint32_t word = static_cast<std::uint32_t>(
      std::strtoull(args.positional[0].c_str(), nullptr, 16));
  const std::uint64_t pc =
      args.positional.size() > 1
          ? std::strtoull(args.positional[1].c_str(), nullptr, 16)
          : riscv::kCodeBase;
  std::printf("%08x: %s\n", word, riscv::disassemble(word, pc).c_str());
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "specure <offline|fuzz|audit|disasm> [options]\n"
               "  offline [--mwait] [--zenbleed] [--dot F] [--verilog F]\n"
               "  fuzz [--iters N] [--seed S] [--mwait] [--zenbleed]\n"
               "       [--monitor-cache] [--feedback lp|codecov]\n"
               "       [--jobs N] [--batch B] [--stop-after-vulns K]\n"
               "       [--json F] [--no-special-seeds] [--quiet]\n"
               "  audit FILE.v --top MODULE [--dot F]\n"
               "  disasm HEXWORD [PC]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string cmd = argv[1];
  const Args args = parse_args(argc, argv, 2);
  if (cmd == "offline") return cmd_offline(args);
  if (cmd == "fuzz") return cmd_fuzz(args);
  if (cmd == "audit") return cmd_audit(args);
  if (cmd == "disasm") return cmd_disasm(args);
  usage();
  return 1;
}
