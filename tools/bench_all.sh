#!/usr/bin/env bash
# Run every bench_* binary with --json and collect the BENCH_*.json
# metric files in one place (default: the repo root), so every PR leaves
# a machine-readable perf trajectory behind.
#
#   tools/bench_all.sh [BUILD_DIR] [OUT_DIR]
#
# BUILD_DIR defaults to ./build, OUT_DIR to the repo root. Google
# Benchmark binaries (bench_micro) do not speak --json; they get
# --benchmark_out so their metrics land next to the others. Also
# available as the CMake target `bench-json`.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"
OUT_DIR="${2:-$REPO_ROOT}"

if ! ls "$BUILD_DIR"/bench_* >/dev/null 2>&1; then
  echo "no bench_* binaries in $BUILD_DIR — configure with -DSPECURE_BENCH=ON" >&2
  exit 1
fi

# Committed BENCH_*.json baselines are perf contracts; numbers from a
# non-Release build undercut every later comparison (it has happened:
# a BENCH_micro.json was once recorded against a debug google-benchmark
# build). Refuse outright unless the caller loudly opts in.
BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD_DIR/CMakeCache.txt" 2>/dev/null || true)"
if [ "${BUILD_TYPE:-unknown}" != "Release" ]; then
  if [ "${SPECURE_BENCH_ALLOW_NONRELEASE:-0}" = "1" ]; then
    echo "WARNING: recording benches from a ${BUILD_TYPE:-unknown} build" >&2
    echo "WARNING: these numbers are NOT comparable to committed Release baselines" >&2
  else
    echo "refusing to record benches: $BUILD_DIR is a '${BUILD_TYPE:-unknown}' build, not Release" >&2
    echo "(set SPECURE_BENCH_ALLOW_NONRELEASE=1 to override; results will be annotated)" >&2
    exit 1
  fi
fi

mkdir -p "$OUT_DIR"
status=0
for bench in "$BUILD_DIR"/bench_*; do
  [ -x "$bench" ] || continue
  name="$(basename "$bench")"
  echo "== $name"
  # Detect Google Benchmark harnesses from the bench source (same rule
  # as CMakeLists.txt); probing by running the binary would execute
  # non-gbench benches in full.
  if grep -q "benchmark/benchmark.h" "$REPO_ROOT/bench/$name.cpp" 2>/dev/null; then
    # Google Benchmark harness: native JSON reporter instead of --json.
    "$bench" --benchmark_out="$OUT_DIR/BENCH_${name#bench_}.json" \
             --benchmark_out_format=json || status=$?
  else
    "$bench" --json "$OUT_DIR" || status=$?
  fi
done

echo
echo "collected metric files:"
ls -l "$OUT_DIR"/BENCH_*.json
exit "$status"
