// Shared helpers for the experiment benches: fixed-width table printing,
// campaign result helpers, and the machine-readable metric sink
// (`--json OUT` writes BENCH_<name>.json so CI can track the perf
// trajectory across PRs). Each bench binary regenerates one table or
// figure from the paper's evaluation (see DESIGN.md §3).
#pragma once

#include <sys/resource.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/session.hpp"

namespace specure::bench {

inline void header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void note(const std::string& text) {
  std::printf("  # %s\n", text.c_str());
}

/// CMake build type this binary was compiled under (stamped into every
/// BENCH_*.json): perf numbers from a Debug/RelWithDebInfo build are not
/// comparable to the committed Release baselines, and the stamp makes a
/// mis-recorded file self-incriminating.
inline const char* build_type() {
#ifdef SPECURE_BUILD_TYPE
  return SPECURE_BUILD_TYPE;
#else
  return "unknown";
#endif
}

/// Process peak RSS in KiB so far — a monotonic high-water mark.
inline std::size_t peak_rss_kib() {
  struct rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<std::size_t>(ru.ru_maxrss);
}

/// Machine-readable metric sink. Constructed from argv: when `--json OUT`
/// is given, metrics recorded with metric() are written to
/// OUT/BENCH_<name>.json when the sink is flushed (or destroyed), so the
/// perf numbers a bench prints are also diffable across PRs:
///
///   int main(int argc, char** argv) {
///     bench::BenchJson json(argc, argv, "trace");
///     ...
///     json.metric("delta_bytes_per_cycle", bytes_per_cycle);
///   }  // writes OUT/BENCH_trace.json
class BenchJson {
 public:
  BenchJson(int argc, char** argv, std::string name)
      : name_(std::move(name)) {
    for (int i = 1; i < argc; ++i) {
      if (std::string(argv[i]) != "--json") continue;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench: --json needs an output directory\n");
        std::exit(64);
      }
      out_dir_ = argv[i + 1];
    }
  }

  ~BenchJson() { flush(); }

  bool enabled() const { return !out_dir_.empty(); }

  void metric(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
  }

  /// Write the file now (idempotent). Returns the path, or "" when the
  /// sink is disabled or the write failed.
  std::string flush() {
    if (!enabled() || flushed_) return path_;
    flushed_ = true;
    std::error_code ec;
    std::filesystem::create_directories(out_dir_, ec);
    path_ = out_dir_ + "/BENCH_" + name_ + ".json";
    std::ofstream out(path_);
    if (!out) {
      std::fprintf(stderr, "bench: cannot open %s\n", path_.c_str());
      path_.clear();
      return path_;
    }
    out << "{\n  \"bench\": \"" << name_ << "\",\n  \"build_type\": \""
        << build_type() << "\",\n  \"metrics\": {";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      out << (i == 0 ? "" : ",") << "\n    \"" << metrics_[i].first
          << "\": " << metrics_[i].second;
    }
    out << "\n  }\n}\n";
    std::printf("  # metrics written to %s\n", path_.c_str());
    return path_;
  }

 private:
  std::string name_;
  std::string out_dir_;
  std::string path_;
  std::vector<std::pair<std::string, double>> metrics_;
  bool flushed_ = false;
};

/// Iteration at which a campaign first produced a finding whose key
/// contains `pattern`; 0 when never found.
inline std::uint64_t first_detection(const core::CampaignResult& result,
                                     const std::string& pattern) {
  for (const auto& [key, iteration] : result.first_detection) {
    if (key.find(pattern) != std::string::npos) return iteration;
  }
  return 0;
}

/// Stop condition matching a finding-key substring (sugar over
/// Session::stop_on_finding for bench call sites).
inline core::Session::StopCondition stop_on(const std::string& pattern) {
  return core::Session::stop_on_finding(pattern);
}

/// Run one spec with an optional extra stop condition — the bench-side
/// one-liner for "campaign under these options, stop when ...".
inline core::CampaignResult run_spec(
    const core::CampaignSpec& spec,
    core::Session::StopCondition stop = nullptr) {
  core::Session session(spec);
  if (stop) session.add_stop(std::move(stop));
  return session.run();
}

/// run_spec plus the session's per-stage pipeline timing — the scaling
/// benches break a campaign's wall-clock into generate / execute /
/// queue-wait / merge so a throughput regression names its stage.
struct SpecRunStats {
  core::CampaignResult result;
  core::PipelineStats pipeline;
  obs::Snapshot metrics;  ///< the session registry at campaign end
};

inline SpecRunStats run_spec_with_stats(
    const core::CampaignSpec& spec,
    core::Session::StopCondition stop = nullptr) {
  core::Session session(spec);
  if (stop) session.add_stop(std::move(stop));
  SpecRunStats out;
  out.result = session.run();
  out.pipeline = session.pipeline_stats();
  out.metrics = session.metrics_snapshot();
  return out;
}

/// Export a metrics-registry snapshot into the bench's JSON under
/// `prefix`: every counter/gauge total, and count + p50/p99 per
/// histogram — so BENCH_*.json carries the same registry the --stats
/// footer and the serve metrics verb read, diffable across PRs.
inline void export_registry(BenchJson& json, const obs::Snapshot& snap,
                            const std::string& prefix = "obs/") {
  for (const obs::CounterSnapshot& c : snap.counters) {
    json.metric(prefix + c.name, static_cast<double>(c.total));
  }
  for (const obs::GaugeSnapshot& g : snap.gauges) {
    json.metric(prefix + g.name, static_cast<double>(g.value));
  }
  for (const obs::HistogramSnapshot& h : snap.histograms) {
    json.metric(prefix + h.name + "/count", static_cast<double>(h.count));
    if (h.count > 0) {
      json.metric(prefix + h.name + "/p50", h.percentile(50));
      json.metric(prefix + h.name + "/p99", h.percentile(99));
    }
  }
}

/// The paper reports wall-clock hours on a 32-core Xeon running RTL
/// simulation; our PUT is a fast C++ model, so we report iterations plus a
/// derived wall-clock using the paper's own scale: SpecDoctor's published
/// 31 h Spectre campaign defines the iterations-per-hour exchange rate for
/// a given baseline iteration count.
inline double derived_hours(std::uint64_t iterations,
                            std::uint64_t baseline_iterations,
                            double baseline_hours = 31.0) {
  if (baseline_iterations == 0) return 0;
  return baseline_hours * static_cast<double>(iterations) /
         static_cast<double>(baseline_iterations);
}

}  // namespace specure::bench
