// Shared helpers for the experiment benches: fixed-width table printing
// and campaign result helpers. Each bench binary regenerates one table or
// figure from the paper's evaluation (see DESIGN.md §3).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "core/session.hpp"

namespace specure::bench {

inline void header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void note(const std::string& text) {
  std::printf("  # %s\n", text.c_str());
}

/// Iteration at which a campaign first produced a finding whose key
/// contains `pattern`; 0 when never found.
inline std::uint64_t first_detection(const core::CampaignResult& result,
                                     const std::string& pattern) {
  for (const auto& [key, iteration] : result.first_detection) {
    if (key.find(pattern) != std::string::npos) return iteration;
  }
  return 0;
}

/// Stop condition matching a finding-key substring (sugar over
/// Session::stop_on_finding for bench call sites).
inline core::Session::StopCondition stop_on(const std::string& pattern) {
  return core::Session::stop_on_finding(pattern);
}

/// Run one spec with an optional extra stop condition — the bench-side
/// one-liner for "campaign under these options, stop when ...".
inline core::CampaignResult run_spec(
    const core::CampaignSpec& spec,
    core::Session::StopCondition stop = nullptr) {
  core::Session session(spec);
  if (stop) session.add_stop(std::move(stop));
  return session.run();
}

/// The paper reports wall-clock hours on a 32-core Xeon running RTL
/// simulation; our PUT is a fast C++ model, so we report iterations plus a
/// derived wall-clock using the paper's own scale: SpecDoctor's published
/// 31 h Spectre campaign defines the iterations-per-hour exchange rate for
/// a given baseline iteration count.
inline double derived_hours(std::uint64_t iterations,
                            std::uint64_t baseline_iterations,
                            double baseline_hours = 31.0) {
  if (baseline_iterations == 0) return 0;
  return baseline_hours * static_cast<double>(iterations) /
         static_cast<double>(baseline_iterations);
}

}  // namespace specure::bench
