// E5 (Figure 2): covered PDLC vs fuzzer iteration for the novel Leakage
// Path (LP) coverage feedback vs traditional code coverage feedback.
// Three repetitions each (as in the paper); the series below are the
// means. Derived summary numbers mirror the paper's:
//   - exploration speedup: iterations the code-coverage fuzzer needs to
//     reach the coverage the LP fuzzer already had (paper: 798 vs 5149
//     iterations = 6.45x);
//   - worst-case lag of code coverage behind LP coverage (paper: 10.2%).
// The D1 ablation (endpoint-only vs all-signals channel covering) runs at
// the end.
//
// SPECURE_FIG2_ITERS scales the campaign length (default 4000).
#include <algorithm>
#include <cstdlib>
#include <vector>

#include "bench_common.hpp"

using namespace specure;

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
}

/// Mean covered-PDLC series over repetitions for one feedback mode.
std::vector<double> mean_series(core::FeedbackMode mode,
                                std::uint64_t iterations, int reps) {
  std::vector<double> mean(iterations, 0.0);
  for (int rep = 0; rep < reps; ++rep) {
    core::CampaignSpec spec;
    spec.feedback = mode;
    spec.rng_seed = 100 + static_cast<std::uint64_t>(rep);
    spec.budget.iterations = iterations;
    spec.batch_size = 1;  // per-iteration feedback, as in the paper's loop
    const auto result = bench::run_spec(spec);
    for (std::size_t i = 0; i < iterations; ++i) {
      mean[i] += static_cast<double>(result.history[i].covered_pdlc) / reps;
    }
  }
  return mean;
}

std::size_t iterations_to_reach(const std::vector<double>& series,
                                double target) {
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (series[i] >= target) return i + 1;
  }
  return series.size();
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchJson json(argc, argv, "fig2_coverage");
  const std::uint64_t iters = env_u64("SPECURE_FIG2_ITERS", 4000);
  const int reps = 3;

  bench::header("E5 / Figure 2: covered PDLC vs iteration (mean of 3 runs)");
  const auto lp = mean_series(core::FeedbackMode::kLeakagePath, iters, reps);
  const auto cc = mean_series(core::FeedbackMode::kCodeCoverage, iters, reps);

  std::printf("  %-10s %-14s %-14s\n", "iteration", "LP-guided",
              "code-cov-guided");
  for (std::uint64_t at = iters / 20; at <= iters; at += iters / 20) {
    std::printf("  %-10llu %-14.1f %-14.1f\n", (unsigned long long)at,
                lp[at - 1], cc[at - 1]);
  }

  // Paper-style summary numbers.
  const double cc_final = cc.back();
  const std::size_t lp_iters = iterations_to_reach(lp, cc_final);
  const std::size_t cc_iters = iterations_to_reach(cc, cc_final);
  const double speedup =
      static_cast<double>(cc_iters) / std::max<std::size_t>(lp_iters, 1);
  double worst_lag = 0;
  for (std::size_t i = iters / 10; i < iters; ++i) {
    if (lp[i] > 0) worst_lag = std::max(worst_lag, (lp[i] - cc[i]) / lp[i]);
  }
  std::printf(
      "\n  code-cov fuzzer needs %zu iterations for the coverage LP reaches "
      "in %zu => %.2fx faster exploration\n",
      cc_iters, lp_iters, speedup);
  std::printf("  worst-case code-coverage lag behind LP: %.1f%%\n",
              100.0 * worst_lag);
  json.metric("lp_vs_codecov_exploration_speedup", speedup);
  json.metric("worst_case_codecov_lag_pct", 100.0 * worst_lag);
  json.metric("lp_final_covered", lp.back());
  bench::note("paper: 5149 vs 798 iterations = 6.45x; worst-case lag 10.2%");

  bench::header("D1 ablation: LP covering policy (1 rep)");
  for (auto policy : {core::LpPolicy::kAllSignals, core::LpPolicy::kEndpoints}) {
    core::CampaignSpec spec;
    spec.lp_policy = policy;
    spec.rng_seed = 100;
    spec.batch_size = 1;
    spec.budget.iterations = std::min<std::uint64_t>(iters, 1500);
    const auto result = bench::run_spec(spec);
    std::printf("  policy=%-11s covered=%zu of %zu\n",
                policy == core::LpPolicy::kAllSignals ? "all-signals"
                                                      : "endpoints",
                result.history.back().covered_pdlc, result.pdlc_total);
  }
  return 0;
}
