// Observability overhead: iterations/sec of the same campaign with the
// metrics registry off (metrics=false: histograms unregistered, spans
// off), on (the default), and on with span tracing (--trace-out). The
// instrumentation contract is "result-neutral and ~free": counters are
// relaxed atomics on per-lane cache lines, histograms two more, spans
// two clock reads plus a ring write — so the gate here is tight:
//
//   overhead(on)        <= 3% of the metrics=off baseline
//   overhead(on+trace)  <= 3%
//
// Rounds interleave the three modes and each mode reports its best
// round (the bench_tiered pattern), so transient machine load cannot
// masquerade as instrumentation cost. Every mode's CampaignResult is
// verified identical to the baseline's — the bit-identity half of the
// contract — and a divergence fails the bench hard.
#include <chrono>
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "core/report.hpp"
#include "core/session.hpp"
#include "core/vuln_detect.hpp"

namespace {

using namespace specure;

bool results_identical(const core::CampaignResult& a,
                       const core::CampaignResult& b) {
  if (a.history.size() != b.history.size() ||
      a.vulns.size() != b.vulns.size() ||
      a.first_detection != b.first_detection ||
      a.total_windows != b.total_windows ||
      a.pdlc_total != b.pdlc_total) {
    return false;
  }
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    if (a.history[i].iteration != b.history[i].iteration ||
        a.history[i].covered_pdlc != b.history[i].covered_pdlc ||
        a.history[i].coverage_points != b.history[i].coverage_points ||
        a.history[i].vulns_found != b.history[i].vulns_found ||
        a.history[i].cycles != b.history[i].cycles) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.vulns.size(); ++i) {
    if (core::dedup_key(a.vulns[i]) != core::dedup_key(b.vulns[i])) {
      return false;
    }
  }
  return true;
}

struct Mode {
  const char* name;
  const char* key;
  bool metrics;
  bool trace;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace specure;
  bench::BenchJson json(argc, argv, "obs");
  bench::header("Observability overhead: metrics off / on / on+tracing");

  constexpr std::uint64_t kIters = 320;
  constexpr std::size_t kJobs = 2;
  constexpr int kRounds = 3;
  const std::string trace_path = "bench_obs_trace.json";

  const Mode kModes[] = {
      {"metrics=off", "off", false, false},
      {"metrics=on", "on", true, false},
      {"on+tracing", "trace", true, true},
  };
  constexpr std::size_t kModeCount = sizeof(kModes) / sizeof(kModes[0]);

  bench::note("campaign: " + std::to_string(kIters) + " iterations, jobs=" +
              std::to_string(kJobs) + ", default preset; best of " +
              std::to_string(kRounds) + " interleaved rounds per mode");

  double best[kModeCount] = {};
  core::CampaignResult reference[kModeCount];
  obs::Snapshot last_snapshot;
  bool identical = true;
  for (int round = 0; round < kRounds; ++round) {
    for (std::size_t m = 0; m < kModeCount; ++m) {
      core::CampaignSpec spec;
      spec.rng_seed = 7;
      spec.jobs = kJobs;
      spec.budget.iterations = kIters;
      spec.metrics = kModes[m].metrics;
      if (kModes[m].trace) spec.trace_out = trace_path;
      core::Session session(spec);
      const auto t0 = std::chrono::steady_clock::now();
      const core::CampaignResult result = session.run();
      const double s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      if (round == 0) {
        reference[m] = result;
        if (m > 0 && !results_identical(reference[0], reference[m])) {
          identical = false;
        }
      }
      if (round == 0 || s < best[m]) best[m] = s;
      if (m == kModeCount - 1) last_snapshot = session.metrics_snapshot();
    }
  }
  std::remove(trace_path.c_str());

  const double base_ips = best[0] > 0 ? kIters / best[0] : 0;
  std::printf("  %-12s %-10s %-10s %s\n", "mode", "seconds", "iters/s",
              "overhead");
  bool gate_ok = true;
  for (std::size_t m = 0; m < kModeCount; ++m) {
    const double ips = best[m] > 0 ? kIters / best[m] : 0;
    const double overhead =
        best[0] > 0 ? (best[m] - best[0]) / best[0] * 100.0 : 0;
    std::printf("  %-12s %-10.3f %-10.1f %+.2f%%\n", kModes[m].name, best[m],
                ips, overhead);
    json.metric(std::string("iters_per_sec_") + kModes[m].key, ips);
    json.metric(std::string("overhead_pct_") + kModes[m].key, overhead);
    if (m > 0 && overhead > 3.0) gate_ok = false;
  }
  json.metric("gate_overhead_pct", 3.0);
  bench::export_registry(json, last_snapshot);

  bench::note("gate: instrumentation overhead <= 3% of the metrics=off "
              "baseline; results must be bit-identical across modes");
  if (!identical) {
    std::printf("  !! CampaignResult diverged across observability modes "
                "(the result-neutrality contract is broken)\n");
    return 1;
  }
  if (!gate_ok) {
    std::printf("  !! overhead gate exceeded (3%% of %.1f iters/s "
                "baseline)\n", base_ips);
  }
  return 0;
}
