// E3 (Table 1): Misspeculation Table rows — start/end cycle of each
// misspeculated window, the raw instruction word and its readable
// disassembly, recovered purely from the ROB signals in the snapshot
// trace (core.rob.unsafe / spec_inst / brupdate).
#include "bench_common.hpp"
#include "core/mst.hpp"

using namespace specure;

int main() {
  bench::header("E3 / Table 1: Misspeculation Table (MST)");
  bench::note("paper row 1: '1  34594  34625  FBEC52E3  BGE S8, T5, 0x800025B0'");

  core::EngineOptions opts;
  opts.rng_seed = 2024;
  opts.mst_sample_rows = 12;
  core::SpecureEngine engine(opts);
  const core::CampaignResult result = engine.run(300);

  std::printf("  ID\tStart\tEnd\tInstruction\tInstruction(Readable)\n");
  for (std::size_t i = 0; i < result.mst_sample.size(); ++i) {
    std::printf("  %s\n",
                core::format_mst_row(i + 1, result.mst_sample[i]).c_str());
  }
  std::printf(
      "\n  campaign: %zu windows total, %zu misspeculated, over 300 inputs\n",
      result.total_windows, result.mispredicted_windows);
  return 0;
}
