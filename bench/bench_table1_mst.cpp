// E3 (Table 1): Misspeculation Table rows — start/end cycle of each
// misspeculated window, the raw instruction word and its readable
// disassembly, recovered purely from the ROB signals in the snapshot
// trace (core.rob.unsafe / spec_inst / brupdate).
#include "bench_common.hpp"
#include "core/mst.hpp"

using namespace specure;

int main(int argc, char** argv) {
  bench::BenchJson json(argc, argv, "table1_mst");
  bench::header("E3 / Table 1: Misspeculation Table (MST)");
  bench::note("paper row 1: '1  34594  34625  FBEC52E3  BGE S8, T5, 0x800025B0'");

  core::CampaignSpec spec;
  spec.rng_seed = 2024;
  spec.mst_sample_rows = 12;
  spec.budget.iterations = 300;
  spec.batch_size = 1;  // per-iteration feedback, as in the paper's loop
  const core::CampaignResult result = bench::run_spec(spec);

  std::printf("  ID\tStart\tEnd\tInstruction\tInstruction(Readable)\n");
  for (std::size_t i = 0; i < result.mst_sample.size(); ++i) {
    std::printf("  %s\n",
                core::format_mst_row(i + 1, result.mst_sample[i]).c_str());
  }
  std::printf(
      "\n  campaign: %zu windows total, %zu misspeculated, over 300 inputs\n",
      result.total_windows, result.mispredicted_windows);
  json.metric("total_windows", static_cast<double>(result.total_windows));
  json.metric("mispredicted_windows",
              static_cast<double>(result.mispredicted_windows));
  json.metric("iters_per_sec",
              result.seconds > 0 ? result.history.size() / result.seconds : 0);
  return 0;
}
