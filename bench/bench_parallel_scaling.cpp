// Parallel campaign scaling: iterations/sec of the Online Phase at
// 1/2/4/8 simulation workers on the default MiniBOOM configuration.
//
// The batch size is held constant across worker counts, so every row runs
// the *same* campaign (bit-identical CampaignResult — verified here via
// the final LP coverage) and only wall-clock throughput may differ. On a
// machine with fewer hardware threads than a row's worker count the extra
// workers just time-slice; expect speedup to flatten there.
#include <cstdio>
#include <thread>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace specure;
  // Peak RSS is a monotonic high-water mark, so later rows can only
  // report >= earlier rows; the first row is the honest one.
  using bench::peak_rss_kib;

  bench::BenchJson json(argc, argv, "parallel_scaling");
  bench::header("Parallel campaign scaling (default MiniBOOM)");
  const std::uint64_t kIters = 400;
  const std::size_t kBatch = 32;
  bench::note("iterations: " + std::to_string(kIters) +
              ", batch size: " + std::to_string(kBatch) +
              ", hardware threads: " +
              std::to_string(std::thread::hardware_concurrency()));

  std::printf("  %-8s %-6s %-12s %-10s %-12s %-10s %-12s\n", "jobs", "ckpt",
              "seconds", "iters/sec", "speedup", "lp-cov", "peak-rss");
  double base_ips = 0;
  std::size_t base_lp = 0;
  bool base_set = false;
  // checkpoint=off rows first (the cold baseline), then the default
  // checkpointed rows — every row runs the same campaign, so lp-cov must
  // agree across the whole matrix (jobs AND checkpoint invariance).
  for (const bool checkpoint : {false, true}) {
    for (const std::size_t jobs : {1u, 2u, 4u, 8u}) {
      if (!checkpoint && jobs != 1 && jobs != 4) continue;
      core::CampaignSpec spec;
      spec.rng_seed = 1;
      spec.jobs = jobs;
      spec.batch_size = kBatch;
      spec.budget.iterations = kIters;
      spec.checkpoint = checkpoint;
      const core::CampaignResult result = bench::run_spec(spec);
      const double ips =
          result.seconds > 0
              ? static_cast<double>(result.history.size()) / result.seconds
              : 0.0;
      const std::size_t lp =
          result.history.empty() ? 0 : result.history.back().covered_pdlc;
      if (!base_set) {
        base_ips = ips;
        base_lp = lp;
        base_set = true;
      }
      std::printf("  %-8zu %-6s %-12.3f %-10.1f %-12.2f %-10zu %zu KiB\n",
                  jobs, checkpoint ? "on" : "off", result.seconds, ips,
                  base_ips > 0 ? ips / base_ips : 0.0, lp, peak_rss_kib());
      json.metric("iters_per_sec_jobs" + std::to_string(jobs) +
                      (checkpoint ? "" : "_nockpt"),
                  ips);
      if (lp != base_lp) {
        std::printf("  !! determinism violation: lp-cov %zu != %zu at the "
                    "jobs=1 checkpoint=off baseline\n",
                    lp, base_lp);
        return 1;
      }
    }
  }
  json.metric("peak_rss_kib", static_cast<double>(peak_rss_kib()));
  bench::note("speedup is relative to jobs=1 checkpoint=off; campaign "
              "results are identical across rows by construction");
  bench::note("peak-rss is the process high-water mark (monotonic across "
              "rows); worker traces are delta-native, O(changes) each");
  return 0;
}
