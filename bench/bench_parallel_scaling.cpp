// Parallel campaign scaling: iterations/sec of the Online Phase at
// 1/2/4/8 simulation workers on the default MiniBOOM configuration,
// under the pipelined sliding-window executor.
//
// The batch size is held constant across worker counts, so every row runs
// the *same* campaign (bit-identical CampaignResult — verified here via
// the final LP coverage) and only wall-clock throughput may differ. Each
// row also reports its per-stage split (generate / execute / queue-wait /
// merge), so a scaling regression names the stage that ate the speedup.
//
// Scaling gate: on hosts with >= 4 hardware threads the jobs=4 row must
// reach at least 2x the jobs=1 throughput (checkpoint-off pair — the
// cold-simulation baseline, free of cache warm-up effects). On smaller
// hosts the extra workers just time-slice one core, so the gate is
// skipped with a visible notice instead of reporting a fake failure.
#include <cstdio>
#include <thread>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace specure;
  // Peak RSS is a monotonic high-water mark, so later rows can only
  // report >= earlier rows; the first row is the honest one.
  using bench::peak_rss_kib;

  bench::BenchJson json(argc, argv, "parallel_scaling");
  bench::header("Parallel campaign scaling (default MiniBOOM)");
  const std::uint64_t kIters = 400;
  const std::size_t kBatch = 32;
  bench::note("iterations: " + std::to_string(kIters) +
              ", batch size: " + std::to_string(kBatch) +
              ", hardware threads: " +
              std::to_string(std::thread::hardware_concurrency()));

  std::printf("  %-8s %-6s %-12s %-10s %-12s %-10s %-12s\n", "jobs", "ckpt",
              "seconds", "iters/sec", "speedup", "lp-cov", "peak-rss");
  double base_ips = 0;
  std::size_t base_lp = 0;
  bool base_set = false;
  double ips_jobs1_nockpt = 0;
  double ips_jobs4_nockpt = 0;
  // checkpoint=off rows first (the cold baseline), then the default
  // checkpointed rows — every row runs the same campaign, so lp-cov must
  // agree across the whole matrix (jobs AND checkpoint invariance).
  for (const bool checkpoint : {false, true}) {
    for (const std::size_t jobs : {1u, 2u, 4u, 8u}) {
      if (!checkpoint && jobs != 1 && jobs != 4) continue;
      core::CampaignSpec spec;
      spec.rng_seed = 1;
      spec.jobs = jobs;
      spec.batch_size = kBatch;
      spec.budget.iterations = kIters;
      spec.checkpoint = checkpoint;
      const auto [result, pipeline, registry] =
          bench::run_spec_with_stats(spec);
      const double ips =
          result.seconds > 0
              ? static_cast<double>(result.history.size()) / result.seconds
              : 0.0;
      const std::size_t lp =
          result.history.empty() ? 0 : result.history.back().covered_pdlc;
      if (!base_set) {
        base_ips = ips;
        base_lp = lp;
        base_set = true;
      }
      std::printf("  %-8zu %-6s %-12.3f %-10.1f %-12.2f %-10zu %zu KiB\n",
                  jobs, checkpoint ? "on" : "off", result.seconds, ips,
                  base_ips > 0 ? ips / base_ips : 0.0, lp, peak_rss_kib());
      double execute = 0;
      double queue_wait = 0;
      for (std::size_t w = 0; w < pipeline.workers.size(); ++w) {
        const core::PipelineWorkerStats& ws = pipeline.workers[w];
        execute += ws.execute_seconds;
        queue_wait += ws.queue_wait_seconds;
        std::printf("    worker %zu: %llu jobs, execute %.3fs, "
                    "queue-wait %.3fs\n",
                    w, static_cast<unsigned long long>(ws.jobs),
                    ws.execute_seconds, ws.queue_wait_seconds);
      }
      std::printf("    merger: generate %.3fs, merge %.3fs, "
                  "result-wait %.3fs\n",
                  pipeline.generate_seconds, pipeline.merge_seconds,
                  pipeline.result_wait_seconds);
      const std::string suffix =
          "_jobs" + std::to_string(jobs) + (checkpoint ? "" : "_nockpt");
      json.metric("iters_per_sec" + suffix, ips);
      json.metric("execute_seconds" + suffix, execute);
      json.metric("queue_wait_seconds" + suffix, queue_wait);
      json.metric("generate_seconds" + suffix, pipeline.generate_seconds);
      json.metric("merge_seconds" + suffix, pipeline.merge_seconds);
      json.metric("result_wait_seconds" + suffix,
                  pipeline.result_wait_seconds);
      if (lp != base_lp) {
        std::printf("  !! determinism violation: lp-cov %zu != %zu at the "
                    "jobs=1 checkpoint=off baseline\n",
                    lp, base_lp);
        return 1;
      }
      if (!checkpoint && jobs == 1) ips_jobs1_nockpt = ips;
      if (!checkpoint && jobs == 4) ips_jobs4_nockpt = ips;
      // The full registry snapshot of the deepest row (jobs=8,
      // checkpoint=on) rides along in the JSON.
      if (checkpoint && jobs == 8) {
        bench::export_registry(json, registry);
      }
    }
  }
  json.metric("peak_rss_kib", static_cast<double>(peak_rss_kib()));
  bench::note("speedup is relative to jobs=1 checkpoint=off; campaign "
              "results are identical across rows by construction");
  bench::note("peak-rss is the process high-water mark (monotonic across "
              "rows); worker traces are delta-native, O(changes) each");

  // Scaling gate (see the file comment): only meaningful when 4 workers
  // can actually run on 4 hardware threads.
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw >= 4) {
    const double speedup = ips_jobs1_nockpt > 0
                               ? ips_jobs4_nockpt / ips_jobs1_nockpt
                               : 0.0;
    json.metric("speedup_jobs4_nockpt", speedup);
    if (speedup < 2.0) {
      std::printf("  !! scaling gate FAILED: jobs=4 is %.2fx jobs=1 "
                  "(need >= 2.00x on %u hardware threads)\n",
                  speedup, hw);
      return 1;
    }
    std::printf("  scaling gate passed: jobs=4 is %.2fx jobs=1\n", speedup);
  } else {
    bench::note("scaling gate SKIPPED: only " + std::to_string(hw) +
                " hardware thread(s); the >= 2x jobs=4 check needs >= 4");
  }
  return 0;
}
