// Trace-layer micro-bench: dense reference recorder vs the delta-native
// trace on the default MiniBOOM preset. Reports per-run trace memory
// (dense vs delta, the ≥5× headline), recording+analysis throughput on
// both paths, and random-access materialization cost — the numbers quoted
// in docs/ARCHITECTURE.md.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "core/coverage_calc.hpp"
#include "core/mst.hpp"
#include "core/offline.hpp"
#include "riscv/program.hpp"
#include "sim/core.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace specure;
  using clock = std::chrono::steady_clock;

  bench::BenchJson json(argc, argv, "trace");
  bench::header("Trace layer: dense reference vs delta-native");

  const std::size_t kPrograms = 24;
  const std::size_t kProgramLen = 96;
  std::vector<riscv::Program> programs;
  {
    util::Rng rng(17);
    for (std::size_t i = 0; i < kPrograms; ++i) {
      programs.push_back(riscv::random_program(rng, kProgramLen));
    }
  }
  const core::OfflineResult off = core::run_offline_phase(sim::CoreConfig{});

  // ---- memory: one dual-recorded pass ------------------------------------
  sim::CoreConfig dual_cfg;
  dual_cfg.record_dense_trace = true;
  sim::Simulator dual_sim(dual_cfg);
  std::size_t dense_bytes = 0, delta_bytes = 0, cycles = 0, events = 0;
  for (const auto& p : programs) {
    const sim::RunResult run = dual_sim.run(p);
    dense_bytes += run.dense_trace->memory_bytes();
    delta_bytes += run.trace.memory_bytes();
    cycles += run.trace.size();
    events += run.trace.event_count();
  }
  std::printf("  %-26s %zu signals, %zu cycles, %zu change events\n",
              "workload:", dual_sim.signal_db().size(), cycles, events);
  std::printf("  %-26s %10.1f KiB  (%.1f bytes/cycle)\n",
              "dense trace memory:", dense_bytes / 1024.0,
              static_cast<double>(dense_bytes) / cycles);
  std::printf("  %-26s %10.1f KiB  (%.1f bytes/cycle)\n",
              "delta trace memory:", delta_bytes / 1024.0,
              static_cast<double>(delta_bytes) / cycles);
  const double ratio = static_cast<double>(dense_bytes) / delta_bytes;
  std::printf("  %-26s %10.1fx\n", "memory reduction:", ratio);
  json.metric("dense_bytes_per_cycle", static_cast<double>(dense_bytes) / cycles);
  json.metric("delta_bytes_per_cycle", static_cast<double>(delta_bytes) / cycles);
  json.metric("memory_reduction", ratio);

  // ---- throughput: simulate + full detector pass on each path ------------
  // The dense path reproduces the pre-delta pipeline: full snapshot
  // capture plus O(cycles × signals) window queries. The delta path is
  // what campaigns run today.
  const auto bench_pass = [&](bool dense_path) {
    sim::CoreConfig cfg;
    cfg.record_dense_trace = dense_path;
    sim::Simulator sim(cfg);
    core::LpCoverageMap lp(off.ifg, off.pdlc, sim.signal_db());
    const auto t0 = clock::now();
    std::size_t total_windows = 0;
    for (const auto& p : programs) {
      const sim::RunResult run = sim.run(p);
      const auto windows = core::extract_mst(run.trace);
      total_windows += windows.size();
      if (dense_path) {
        lp.update(*run.dense_trace, windows);
      } else {
        lp.update(run.trace, windows);
      }
    }
    const double s = std::chrono::duration<double>(clock::now() - t0).count();
    return std::pair<double, std::size_t>(s, total_windows);
  };
  bench_pass(false);  // warm-up (page cache, allocator)
  const auto [dense_s, dense_w] = bench_pass(true);
  const auto [delta_s, delta_w] = bench_pass(false);
  if (dense_w != delta_w) {
    std::printf("  !! window count diverged: %zu vs %zu\n", dense_w, delta_w);
    return 1;
  }
  std::printf("  %-26s %10.1f runs/sec\n", "dense pipeline:",
              programs.size() / dense_s);
  std::printf("  %-26s %10.1f runs/sec  (%.2fx)\n", "delta pipeline:",
              programs.size() / delta_s, dense_s / delta_s);
  json.metric("dense_runs_per_sec", programs.size() / dense_s);
  json.metric("delta_runs_per_sec", programs.size() / delta_s);

  // ---- random access ------------------------------------------------------
  {
    sim::Simulator sim{sim::CoreConfig{}};
    const sim::RunResult run = sim.run(programs[0]);
    const std::uint64_t last = run.trace.cycle_at(run.trace.size() - 1);
    const std::size_t kLookups = 20000;
    const auto t0 = clock::now();
    std::uint64_t sink = 0;
    for (std::size_t i = 0; i < kLookups; ++i) {
      sink += run.trace.at_cycle(1 + (i * 37) % last).values[0];
    }
    const double s = std::chrono::duration<double>(clock::now() - t0).count();
    std::printf("  %-26s %10.2f us/lookup  (keyframed, %zu-cycle trace)\n",
                "at_cycle materialize:", 1e6 * s / kLookups,
                run.trace.size());
    json.metric("at_cycle_us_per_lookup", 1e6 * s / kLookups);
    if (sink == 0x12345678) std::printf(" ");  // keep the loop observable
  }
  json.metric("peak_rss_kib", static_cast<double>(bench::peak_rss_kib()));

  if (ratio < 5.0) {
    std::printf("  !! memory reduction below the 5x acceptance floor\n");
    return 1;
  }
  bench::note("dense path = pre-delta pipeline (full per-cycle snapshots + "
              "dense window queries)");
  return 0;
}
