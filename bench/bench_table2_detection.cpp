// E4 (Table 2): vulnerability-detection effectiveness matrix —
// Specure vs the SpecDoctor-like differential fuzzer [11] and the
// bounded-exhaustive checker [14] on Spectre v1, Spectre v2, and the
// emulated (M)WAIT and Zenbleed vulnerabilities.
//
// Expected shape (paper Table 2): Specure detects all four; the baselines
// detect at most the Spectre pair — SpecDoctor's varied-secret comparison
// cannot see leaks that do not reflect the secret value and its
// instrumentation does not cover the timer CSR or the register file; the
// exhaustive method's reduced alphabet cannot reach the CSR-armed bugs
// and its budget explodes first.
//
// Environment knobs: SPECURE_T2_MWAIT_BUDGET (default 60000),
// SPECURE_T2_BUDGET (default 12000) scale the fuzzing budgets.
#include <cstdlib>

#include "baseline/exhaustive.hpp"
#include "baseline/specdoctor.hpp"
#include "bench_common.hpp"
#include "riscv/decode.hpp"

using namespace specure;

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
}

struct Cell {
  bool detected = false;
  std::uint64_t iterations = 0;
};

const char* mark(const Cell& c) { return c.detected ? "Y" : "-"; }

/// Specure campaign against one vulnerability configuration; `pattern`
/// selects the finding key; for the Spectre split the window-opening
/// instruction distinguishes v1 (conditional branch) from v2 (indirect).
Cell run_specure(const sim::VulnConfig& vuln, bool monitor_cache,
                 const std::string& pattern, bool want_indirect_opener,
                 std::uint64_t budget, bool match_opener = false) {
  core::CampaignSpec spec;
  spec.core.vuln = vuln;
  spec.detector.monitor_cache = monitor_cache;
  spec.rng_seed = 1;
  spec.budget.iterations = budget;
  spec.batch_size = 1;  // per-iteration feedback, as in the paper's loop

  Cell cell;
  bench::run_spec(spec, [&](const core::CampaignResult& r) {
    for (const auto& v : r.vulns) {
      if (core::finding_key(v).find(pattern) == std::string::npos) continue;
      if (match_opener &&
          v.window.has_indirect_opener() != want_indirect_opener) {
        continue;
      }
      cell.detected = true;
      cell.iterations = r.history.size();
      return true;
    }
    return false;
  });
  return cell;
}

Cell run_specdoctor(const sim::VulnConfig& vuln, const std::string& component,
                    std::uint64_t budget) {
  baseline::SpecdoctorOptions opts;
  opts.core.vuln = vuln;
  opts.rng_seed = 7;
  baseline::SpecdoctorFuzzer fuzzer(opts);
  Cell cell;
  const auto res =
      fuzzer.run(budget, [&](const baseline::SpecdoctorResult& r) {
        for (const auto& f : r.findings) {
          if (component.empty() ||
              f.component.find(component) != std::string::npos) {
            cell.detected = true;
            cell.iterations = f.iteration;
            return true;
          }
        }
        return false;
      });
  (void)res;
  return cell;
}

Cell run_exhaustive(const sim::VulnConfig& vuln, const std::string& pattern,
                    bool want_indirect_opener) {
  baseline::ExhaustiveOptions opts;
  opts.core.vuln = vuln;
  opts.max_depth = 4;
  opts.state_budget = 1500;
  baseline::ExhaustiveChecker checker(opts);
  const auto res = checker.run();
  Cell cell;
  for (const auto& f : res.findings) {
    if (core::finding_key(f).find(pattern) == std::string::npos) continue;
    if (pattern == "cache-residue" &&
        f.window.has_indirect_opener() != want_indirect_opener) {
      continue;
    }
    cell.detected = true;
    cell.iterations = res.sequences_tried;
    break;
  }
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchJson json(argc, argv, "table2_detection");
  bench::header("E4 / Table 2: detection effectiveness (Y=detected)");
  const std::uint64_t budget = env_u64("SPECURE_T2_BUDGET", 12000);
  const std::uint64_t mwait_budget =
      env_u64("SPECURE_T2_MWAIT_BUDGET", 60000);

  sim::VulnConfig plain{};
  sim::VulnConfig mwait{};
  mwait.mwait_emulation = true;
  sim::VulnConfig zenbleed{};
  zenbleed.zenbleed_emulation = true;

  // --- SpecDoctor-like [11] -------------------------------------------
  const Cell sd_v1 = run_specdoctor(plain, "core.dcache.", 5000);
  const Cell sd_v2 = run_specdoctor(plain, "core.bp.", 5000);
  const Cell sd_mw = run_specdoctor(mwait, "csr", 1000);      // blind
  const Cell sd_zb = run_specdoctor(zenbleed, "rf", 1000);    // blind

  // --- Bounded exhaustive [14] ----------------------------------------
  const Cell ex_v1 = run_exhaustive(plain, "cache-residue", false);
  const Cell ex_v2 = run_exhaustive(plain, "cache-residue", true);
  const Cell ex_mw = run_exhaustive(mwait, "mwait_timer", false);
  const Cell ex_zb = run_exhaustive(zenbleed, "core.rf.", false);

  // --- Specure ----------------------------------------------------------
  const Cell sp_v1 =
      run_specure(plain, true, "cache-residue", false, budget, true);
  const Cell sp_v2 =
      run_specure(plain, true, "cache-residue", true, budget, true);
  const Cell sp_mw = run_specure(mwait, false, "mwait_timer", false,
                                 mwait_budget);
  const Cell sp_zb = run_specure(zenbleed, false, "core.rf.", false, budget);

  std::printf("  %-18s %-10s %-10s %-12s %-12s\n", "Tool", "Spectre-v1",
              "Spectre-v2", "(M)WAIT e.m.", "Zenbleed e.m.");
  std::printf("  %-18s %-10s %-10s %-12s %-12s\n", "SpecDoctor-like[11]",
              mark(sd_v1), mark(sd_v2), mark(sd_mw), mark(sd_zb));
  std::printf("  %-18s %-10s %-10s %-12s %-12s\n", "Exhaustive[14]",
              mark(ex_v1), mark(ex_v2), mark(ex_mw), mark(ex_zb));
  std::printf("  %-18s %-10s %-10s %-12s %-12s\n", "Specure", mark(sp_v1),
              mark(sp_v2), mark(sp_mw), mark(sp_zb));

  std::printf("\n  Specure first-detection iterations: v1=%llu v2=%llu "
              "mwait=%llu zenbleed=%llu\n",
              (unsigned long long)sp_v1.iterations,
              (unsigned long long)sp_v2.iterations,
              (unsigned long long)sp_mw.iterations,
              (unsigned long long)sp_zb.iterations);
  json.metric("first_detection_v1", static_cast<double>(sp_v1.iterations));
  json.metric("first_detection_v2", static_cast<double>(sp_v2.iterations));
  json.metric("first_detection_mwait", static_cast<double>(sp_mw.iterations));
  json.metric("first_detection_zenbleed",
              static_cast<double>(sp_zb.iterations));
  bench::note("paper: Specure detects all four; SpecDoctor cannot detect the");
  bench::note("emulated pair within 24h; exhaustive methods hit state explosion.");
  if (!sp_mw.detected) {
    bench::note("(M)WAIT not found within budget — raise "
                "SPECURE_T2_MWAIT_BUDGET (paper needed 14h, its longest run)");
  }
  return 0;
}
