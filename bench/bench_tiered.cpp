// Tiered execution: iterations/sec of the fast-functional prefix tier
// (tier=fast, Simulator::run_tiered) against the detailed-only path
// (tier=detailed), on the default MiniBOOM configuration.
//
// Two cold workloads (checkpointing disabled in both workers so the
// measurement isolates the tier policy):
//
//   corpus-tail  corpus-style programs drawn from the fuzzer (special +
//                random seeds). Generic traffic: most programs arm
//                speculation within a few instructions, so the fast
//                tier's prefix is short — the requirement here is "no
//                regression", not a speedup.
//   long-prefix  a long straight-line ALU/load/store ramp before the
//                first branch — the paper's leak-gadget setup shape
//                (build attacker state, then branch), where nearly the
//                whole run is prefix.
//
// Acceptance: neither workload may regress under tier=fast. The tier's
// historical >=2x gadget speedup predates the shared dirty-set capture
// engine: it mostly measured the detailed core's full per-cycle signal
// sweep, which no longer exists — both tiers now record O(changed)
// signals per cycle, so the remaining fast-tier advantage is only the
// skipped speculation machinery (~1.1x here, with per-run fixed costs
// dominating these sub-200us runs).
//
// Every tier=fast result is verified against its detailed twin (cycles,
// coverage, LP hits, finding keys); any divergence fails the bench. A
// handoff-cycle histogram shows where the fast tier hands control to
// the detailed core across each workload.
#include <array>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/campaign_worker.hpp"
#include "core/offline.hpp"
#include "fuzz/corpus.hpp"
#include "riscv/decode.hpp"
#include "riscv/program.hpp"

namespace {

using namespace specure;

/// Straight-line ALU/load/store ramp of `prefix_len` instructions, then
/// a branch and a short tail: the handoff lands at the branch, so the
/// fast tier executes essentially the whole run.
riscv::Program long_prefix_gadget(util::Rng& rng, std::size_t prefix_len) {
  riscv::ProgramBuilder b;
  b.li(10, static_cast<std::int64_t>(riscv::kDataBase));
  for (std::size_t i = 0; i < prefix_len; ++i) {
    switch (rng.below(5)) {
      case 0: b.addi(5 + rng.below(8), 5 + rng.below(8),
                     static_cast<std::int32_t>(rng.below(64)) - 32);
              break;
      case 1: b.xor_(5 + rng.below(8), 5 + rng.below(8), 5 + rng.below(8));
              break;
      case 2: b.add(5 + rng.below(8), 5 + rng.below(8), 5 + rng.below(8));
              break;
      case 3: b.lw(5 + rng.below(8), 10,
                   static_cast<std::int32_t>(rng.below(24)) * 8);
              break;
      default: b.sw(5 + rng.below(8), 10,
                    static_cast<std::int32_t>(rng.below(24)) * 8);
               break;
    }
  }
  b.branch(riscv::Op::kBne, 5, 6, "skip");
  b.addi(7, 7, 1);
  b.label("skip");
  b.ecall();
  riscv::Program p = b.build();
  p.data.resize(256);
  for (auto& byte : p.data) byte = static_cast<std::uint8_t>(rng.below(256));
  return p;
}

bool results_match(const core::WorkerResult& a, const core::WorkerResult& b) {
  if (a.cycles != b.cycles || a.lp_hits != b.lp_hits ||
      a.windows.size() != b.windows.size() ||
      a.reports.size() != b.reports.size() ||
      a.coverage.points() != b.coverage.points() ||
      a.coverage.toggle_bits() != b.coverage.toggle_bits()) {
    return false;
  }
  for (std::size_t i = 0; i < a.reports.size(); ++i) {
    if (core::dedup_key(a.reports[i]) != core::dedup_key(b.reports[i])) {
      return false;
    }
  }
  return true;
}

/// Handoff-cycle histogram buckets (prefix cycles spent in the fast tier
/// per run): 0 | 1-16 | 17-64 | 65-256 | 257+.
constexpr std::array<std::uint64_t, 4> kBucketEdges{0, 16, 64, 256};

std::size_t bucket_of(std::uint64_t cycles) {
  for (std::size_t i = 0; i < kBucketEdges.size(); ++i) {
    if (cycles <= kBucketEdges[i]) return i;
  }
  return kBucketEdges.size();
}

struct Row {
  double detailed_ips = 0;
  double fast_ips = 0;
  double speedup = 0;
  std::uint64_t fast_cycles = 0;
  std::uint64_t handoffs = 0;
  std::uint64_t completions = 0;
  std::uint64_t fallbacks = 0;
  std::array<std::uint64_t, 5> histogram{};
  bool identical = true;
};

Row run_workload(const std::vector<fuzz::FuzzJob>& jobs,
                 const core::CampaignSpec& spec,
                 const core::OfflineResult& offline) {
  core::WorkerCheckpointOptions no_ckpt;
  no_ckpt.enabled = false;  // isolate the tier policy from checkpoint reuse
  core::WorkerTierOptions fast_tier;
  core::WorkerTierOptions detailed_tier;
  detailed_tier.fast = false;
  core::CampaignWorker fast(spec.core, offline, spec.lp_policy,
                            spec.detector, no_ckpt, fast_tier);
  core::CampaignWorker detailed(spec.core, offline, spec.lp_policy,
                                spec.detector, no_ckpt, detailed_tier);

  Row row;
  // Round 0 verifies every tier=fast result against its detailed twin
  // and collects the tier telemetry; the remaining rounds re-time the
  // identical job stream. Rounds interleave the two workers and the
  // reported rate is each side's best round, so transient machine load
  // cannot masquerade as a tier effect.
  constexpr int kRounds = 3;
  double detailed_s = 0, fast_s = 0;
  std::vector<core::WorkerResult> detailed_results;
  detailed_results.reserve(jobs.size());
  for (int round = 0; round < kRounds; ++round) {
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& job : jobs) {
      if (round == 0) {
        detailed_results.push_back(detailed.process(job));
      } else {
        detailed.process(job);
      }
    }
    const auto t1 = std::chrono::steady_clock::now();
    std::uint64_t prev_fast_cycles = fast.tier_stats().fast_cycles;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (round == 0) {
        if (!results_match(fast.process(jobs[i]), detailed_results[i])) {
          row.identical = false;
        }
        const std::uint64_t total = fast.tier_stats().fast_cycles;
        ++row.histogram[bucket_of(total - prev_fast_cycles)];
        prev_fast_cycles = total;
      } else {
        fast.process(jobs[i]);
      }
    }
    const auto t2 = std::chrono::steady_clock::now();
    const double d = std::chrono::duration<double>(t1 - t0).count();
    const double f = std::chrono::duration<double>(t2 - t1).count();
    if (round == 0 || d < detailed_s) detailed_s = d;
    if (round == 0 || f < fast_s) fast_s = f;
    if (round == 0) {
      row.fast_cycles = fast.tier_stats().fast_cycles;
      row.handoffs = fast.tier_stats().handoffs;
      row.completions = fast.tier_stats().fast_completions;
      row.fallbacks = fast.tier_stats().fallbacks;
    }
  }
  row.detailed_ips = detailed_s > 0 ? jobs.size() / detailed_s : 0;
  row.fast_ips = fast_s > 0 ? jobs.size() / fast_s : 0;
  row.speedup = row.detailed_ips > 0 ? row.fast_ips / row.detailed_ips : 0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace specure;
  bench::BenchJson json(argc, argv, "tiered");
  bench::header("Tiered execution: fast prefix tier (default MiniBOOM)");

  core::CampaignSpec spec;  // default preset supplies core/detector config
  const core::OfflineResult offline =
      core::run_offline_phase(spec.core, spec.pdlc);

  constexpr std::size_t kCorpusJobs = 96;
  constexpr std::size_t kGadgetJobs = 48;
  constexpr std::size_t kPrefixLen = 192;
  bench::note("workloads: " + std::to_string(kCorpusJobs) +
              " fuzzer corpus programs; " + std::to_string(kGadgetJobs) +
              " long-prefix gadgets (" + std::to_string(kPrefixLen) +
              "-inst straight-line ramp); checkpointing disabled in both "
              "workers");

  std::uint64_t iter = 0;
  std::vector<fuzz::FuzzJob> corpus_jobs;
  {
    fuzz::FuzzerOptions options;
    fuzz::Fuzzer fuzzer(options, 1);
    for (std::size_t i = 0; i < kCorpusJobs; ++i) {
      fuzz::FuzzJob j;
      j.iteration = ++iter;
      j.program = fuzzer.next();
      corpus_jobs.push_back(std::move(j));
    }
  }
  std::vector<fuzz::FuzzJob> gadget_jobs;
  {
    util::Rng rng(11);
    for (std::size_t i = 0; i < kGadgetJobs; ++i) {
      fuzz::FuzzJob j;
      j.iteration = ++iter;
      j.program = long_prefix_gadget(rng, kPrefixLen);
      gadget_jobs.push_back(std::move(j));
    }
  }

  std::printf("  %-12s %-11s %-10s %-9s %-12s %-9s %-10s %s\n", "workload",
              "detailed/s", "fast/s", "speedup", "fast-cycles", "handoffs",
              "fallbacks", "identical");
  bool all_identical = true;
  double gadget_speedup = 0;
  const auto report = [&](const char* name, const char* key,
                          const std::vector<fuzz::FuzzJob>& jobs) {
    const Row row = run_workload(jobs, spec, offline);
    std::printf("  %-12s %-11.1f %-10.1f %-9.2f %-12llu %-9llu %-10llu %s\n",
                name, row.detailed_ips, row.fast_ips, row.speedup,
                static_cast<unsigned long long>(row.fast_cycles),
                static_cast<unsigned long long>(row.handoffs),
                static_cast<unsigned long long>(row.fallbacks),
                row.identical ? "yes" : "NO");
    std::printf("    handoff cycles: 0:%llu  1-16:%llu  17-64:%llu  "
                "65-256:%llu  257+:%llu\n",
                static_cast<unsigned long long>(row.histogram[0]),
                static_cast<unsigned long long>(row.histogram[1]),
                static_cast<unsigned long long>(row.histogram[2]),
                static_cast<unsigned long long>(row.histogram[3]),
                static_cast<unsigned long long>(row.histogram[4]));
    json.metric(std::string("iters_per_sec_detailed_") + key,
                row.detailed_ips);
    json.metric(std::string("iters_per_sec_fast_") + key, row.fast_ips);
    json.metric(std::string("speedup_") + key, row.speedup);
    json.metric(std::string("handoff_cycles_total_") + key,
                static_cast<double>(row.fast_cycles));
    all_identical = all_identical && row.identical;
    return row.speedup;
  };
  const double corpus_speedup = report("corpus-tail", "corpus", corpus_jobs);
  gadget_speedup = report("long-prefix", "gadget", gadget_jobs);

  bench::note("acceptance: neither workload may regress under tier=fast "
              "(the old 2x gadget floor predates the shared dirty-set "
              "capture engine — see the header comment)");
  if (!all_identical) {
    std::printf("  !! tier=fast results diverged from the detailed path\n");
    return 1;
  }
  if (gadget_speedup < 0.95) {
    std::printf("  !! long-prefix regressed under tier=fast (%.2fx)\n",
                gadget_speedup);
  }
  if (corpus_speedup < 0.95) {
    std::printf("  !! corpus-tail regressed under tier=fast (%.2fx)\n",
                corpus_speedup);
  }
  return 0;
}
