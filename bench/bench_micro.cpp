// E7: engineering micro-benchmarks (google-benchmark) for the performance-
// critical kernels: simulation, snapshot handling, IFG construction, PDLC
// extraction (both directions), mutation, and LP-coverage accounting.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/coverage_calc.hpp"
#include "core/mst.hpp"
#include "core/offline.hpp"
#include "fuzz/mutator.hpp"
#include "riscv/decode.hpp"
#include "riscv/program.hpp"
#include "sim/core.hpp"
#include "sim/structure.hpp"

using namespace specure;

namespace {

const sim::Simulator& shared_simulator() {
  static sim::Simulator sim{sim::CoreConfig{}};
  return sim;
}

void BM_SimulatorRun(benchmark::State& state) {
  util::Rng rng(1);
  const auto program =
      riscv::random_program(rng, static_cast<std::size_t>(state.range(0)));
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    const auto run = shared_simulator().run(program);
    cycles += run.cycles;
    benchmark::DoNotOptimize(run.trace.size());
  }
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorRun)->Arg(32)->Arg(128)->Arg(256);

void BM_SnapshotDiff(benchmark::State& state) {
  util::Rng rng(2);
  const auto program = riscv::random_program(rng, 96);
  const auto run = shared_simulator().run(program);
  const auto& a = run.trace[0];
  const auto& b = run.trace[run.trace.size() - 1];
  for (auto _ : state) {
    benchmark::DoNotOptimize(snapshot::diff(a, b).size());
  }
}
BENCHMARK(BM_SnapshotDiff);

void BM_TraceWindowMask(benchmark::State& state) {
  util::Rng rng(3);
  const auto run = shared_simulator().run(riscv::random_program(rng, 96));
  const auto windows = core::extract_mst(run.trace);
  if (windows.empty()) {
    state.SkipWithError("fixed seed produced no speculative window");
    return;
  }
  std::size_t w = 0;
  for (auto _ : state) {
    const auto& win = windows[w++ % windows.size()];
    benchmark::DoNotOptimize(
        run.trace.changed_mask(win.start_cycle, win.end_cycle).size());
  }
}
BENCHMARK(BM_TraceWindowMask);

void BM_TraceMaterialize(benchmark::State& state) {
  util::Rng rng(3);
  const auto run = shared_simulator().run(riscv::random_program(rng, 96));
  std::uint64_t c = 1;
  const std::uint64_t last = run.trace.cycle_at(run.trace.size() - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run.trace.at_cycle(1 + (c * 37) % last));
    ++c;
  }
}
BENCHMARK(BM_TraceMaterialize);

void BM_IfgBuild(benchmark::State& state) {
  const sim::CoreConfig cfg;
  for (auto _ : state) {
    const auto g = sim::build_ifg(cfg);
    benchmark::DoNotOptimize(g.node_count());
  }
}
BENCHMARK(BM_IfgBuild);

void BM_PdlcExtract(benchmark::State& state) {
  const auto g = sim::build_ifg(sim::CoreConfig{});
  ift::PdlcOptions opts;
  opts.reverse = state.range(0) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ift::extract_pdlc(g, opts).size());
  }
  state.SetLabel(opts.reverse ? "reverse" : "forward");
}
BENCHMARK(BM_PdlcExtract)->Arg(1)->Arg(0);

void BM_Mutate(benchmark::State& state) {
  util::Rng rng(4);
  auto program = riscv::random_program(rng, 96);
  for (auto _ : state) {
    program = fuzz::mutate(program, rng);
    benchmark::DoNotOptimize(program.code.size());
  }
}
BENCHMARK(BM_Mutate);

void BM_DecodeThroughput(benchmark::State& state) {
  util::Rng rng(5);
  std::vector<std::uint32_t> words(4096);
  for (auto& w : words) w = static_cast<std::uint32_t>(rng.next());
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(riscv::decode(words[i++ & 4095]).op);
  }
}
BENCHMARK(BM_DecodeThroughput);

void BM_FastAluDispatch(benchmark::State& state) {
  // The fast tier's function-pointer ALU kernels vs the reference
  // switch evaluator, over a decoded random instruction stream.
  util::Rng rng(7);
  std::vector<riscv::DecodedInst> insts;
  while (insts.size() < 4096) {
    const auto d = riscv::decode(
        riscv::random_instruction(rng, insts.size(), 4096));
    if (d.valid() && sim::fast_tier_supported(d.op) &&
        !riscv::is_load(d.op) && !riscv::is_store(d.op)) {
      insts.push_back(d);
    }
  }
  const sim::FastAluFn* table = sim::fast_alu_table();
  const bool tabled = state.range(0) != 0;
  std::size_t i = 0;
  std::uint64_t acc = 0x9e3779b97f4a7c15ull;
  for (auto _ : state) {
    const auto& d = insts[i++ & 4095];
    acc = tabled ? table[static_cast<std::size_t>(d.op)](d, acc, acc >> 7)
                 : sim::fast_alu_reference(d, acc, acc >> 7);
    benchmark::DoNotOptimize(acc);
  }
  state.SetLabel(tabled ? "table" : "switch");
}
BENCHMARK(BM_FastAluDispatch)->Arg(1)->Arg(0);

void BM_CaptureCycle(benchmark::State& state) {
  // The per-cycle trace-capture kernel, isolated: a dense sweep records
  // all ~314 signals per cycle (arg0 = 0, the pre-dirty-set cost model),
  // while record_dirty walks only the K marked ids (arg0 = 1). In both
  // shapes the same K signals actually change value each cycle, so the
  // event streams are identical — the benchmark measures pure sweep
  // overhead, which is what the dirty-set engine removes.
  const auto& sim = shared_simulator();
  const std::size_t n = sim.signal_descs().size();
  const bool dirty_walk = state.range(0) != 0;
  const auto k = static_cast<std::size_t>(state.range(1));
  std::vector<std::uint64_t> words((n + 63) / 64, 0);
  std::vector<std::size_t> changing;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t id = i * (n / k);
    words[id / 64] |= std::uint64_t{1} << (id % 64);
    changing.push_back(id);
  }
  snapshot::Trace trace(&sim.signal_db());
  std::uint64_t cycle = 0;
  std::uint64_t v = 0;
  for (auto _ : state) {
    if (cycle % 8192 == 0) {  // bound trace growth across iterations
      trace.reset();
      trace.begin_cycle(cycle++);
      for (std::size_t i = 0; i < n; ++i) {
        trace.record(static_cast<snapshot::SignalId>(i), 0);
      }
      continue;
    }
    trace.begin_cycle(cycle++);
    ++v;
    if (dirty_walk) {
      trace.record_dirty(words, [v](std::size_t) { return v; });
    } else {
      std::size_t next = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const bool changed = next < changing.size() && changing[next] == i;
        if (changed) ++next;
        trace.record(static_cast<snapshot::SignalId>(i), changed ? v : 0);
      }
    }
  }
  state.SetLabel(dirty_walk ? "dirty" : "dense");
  state.counters["signals_walked"] =
      static_cast<double>(dirty_walk ? k : n);
}
BENCHMARK(BM_CaptureCycle)
    ->Args({0, 17})
    ->Args({1, 8})
    ->Args({1, 17})
    ->Args({1, 32});

void BM_LpCoverageUpdate(benchmark::State& state) {
  const auto off = core::run_offline_phase(sim::CoreConfig{});
  util::Rng rng(6);
  const auto run = shared_simulator().run(riscv::random_program(rng, 96));
  const auto windows = core::extract_mst(run.trace);
  for (auto _ : state) {
    core::LpCoverageMap lp(off.ifg, off.pdlc,
                           shared_simulator().signal_db());
    benchmark::DoNotOptimize(lp.update(run.trace, windows));
  }
}
BENCHMARK(BM_LpCoverageUpdate);

}  // namespace

// Expanded BENCHMARK_MAIN so the emitted JSON context carries the
// *application* build type next to google-benchmark's own
// library_build_type (the library can be a debug build while the bench
// code is Release, or vice versa — both matter for comparability).
int main(int argc, char** argv) {
  benchmark::AddCustomContext("specure_build_type", bench::build_type());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
