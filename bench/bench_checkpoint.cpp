// Checkpointed incremental simulation: iterations/sec of the worker fast
// path (prefix-reuse via Simulator::run_from + per-program decode cache)
// against the cold path, on the default MiniBOOM configuration.
//
// Two mutation-local workloads, both shaped like real campaign traffic:
//
//   corpus-tail  corpus-style parents drawn from the fuzzer (special +
//                random seeds), children mutated in the last eighth of
//                the code — the generic mutation-locality case.
//   gadget-tail  parents with a long training loop followed by a
//                straight-line gadget tail, children mutated in the
//                tail — the paper's leak-hunting shape (train the
//                predictor, then perturb the gadget), where almost the
//                whole prefix is reusable.
//
// Every checkpoint-path result is verified against its cold-path twin
// (cycles, coverage, LP hits, finding keys); any divergence fails the
// bench. The headline acceptance number is the gadget-tail speedup
// (expected >= 2x).
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/campaign_worker.hpp"
#include "core/offline.hpp"
#include "fuzz/corpus.hpp"
#include "fuzz/mutator.hpp"
#include "riscv/decode.hpp"
#include "riscv/program.hpp"

namespace {

using namespace specure;

riscv::Program gadget_parent(util::Rng& rng, unsigned train_iters,
                             std::size_t tail_len) {
  riscv::ProgramBuilder b;
  b.li(5, train_iters);
  b.li(10, static_cast<std::int64_t>(riscv::kDataBase));
  b.label("train");
  b.ld(6, 10, 0);
  b.addi(7, 6, 1);
  b.sd(7, 10, 8);
  b.addi(5, 5, -1);
  // Forward exit branch (predicted not-taken while training) + backward
  // JAL: fetch never streams into the tail until training really ends,
  // so the fetch watermark stays below the gadget for the whole prefix.
  b.branch(riscv::Op::kBeq, 5, 0, "exit");
  b.jal(0, "train");
  b.label("exit");
  const std::size_t head = b.size();
  riscv::Program p = b.build();
  for (std::size_t i = 0; i < tail_len; ++i) {
    // Branch-free tail: a straight-line gadget after the training loop.
    std::uint32_t word = 0;
    do {
      word = riscv::random_instruction(rng, head + i, head + tail_len);
      const auto d = riscv::decode(word);
      if (d.valid() && !riscv::is_branch(d.op) && d.op != riscv::Op::kJal &&
          d.op != riscv::Op::kJalr && d.op != riscv::Op::kEcall &&
          d.op != riscv::Op::kEbreak) {
        break;
      }
    } while (true);
    p.code.push_back(word);
  }
  p.data.resize(64, 0);
  return p;
}

/// Parent job followed by `children` tail-mutants of it, as a campaign
/// batch would produce them (the parent is an earlier iteration).
void push_family(std::vector<fuzz::FuzzJob>& jobs, const riscv::Program& p,
                 std::size_t children, std::size_t tail_len, util::Rng& rng,
                 std::uint64_t& iter) {
  fuzz::FuzzJob parent_job;
  parent_job.iteration = ++iter;
  parent_job.program = p;
  jobs.push_back(std::move(parent_job));
  const std::size_t n = p.code.size();
  const std::size_t lo = n > tail_len ? n - tail_len : 0;
  for (std::size_t k = 0; k < children; ++k) {
    fuzz::FuzzJob j;
    j.iteration = ++iter;
    j.program = p;
    const std::size_t idx = lo + rng.below(n - lo);
    j.program.code[idx] = riscv::random_instruction(rng, idx, n);
    j.has_parent = true;
    j.parent = p;
    j.parent_hash = p.hash();
    j.divergence = fuzz::first_divergence(p, j.program);
    jobs.push_back(std::move(j));
  }
}

bool results_match(const core::WorkerResult& a, const core::WorkerResult& b) {
  if (a.cycles != b.cycles || a.lp_hits != b.lp_hits ||
      a.windows.size() != b.windows.size() ||
      a.reports.size() != b.reports.size() ||
      a.coverage.points() != b.coverage.points() ||
      a.coverage.toggle_bits() != b.coverage.toggle_bits()) {
    return false;
  }
  for (std::size_t i = 0; i < a.reports.size(); ++i) {
    if (core::dedup_key(a.reports[i]) != core::dedup_key(b.reports[i])) {
      return false;
    }
  }
  return true;
}

struct Row {
  double cold_ips = 0;
  double fast_ips = 0;
  double speedup = 0;
  std::uint64_t resumed = 0;
  std::uint64_t cycles_skipped = 0;
  bool identical = true;
};

Row run_workload(const std::vector<fuzz::FuzzJob>& jobs,
                 const core::CampaignSpec& spec,
                 const core::OfflineResult& offline) {
  core::WorkerCheckpointOptions on;
  core::WorkerCheckpointOptions off;
  off.enabled = false;
  core::CampaignWorker fast(spec.core, offline, spec.lp_policy,
                            spec.detector, on);
  core::CampaignWorker cold(spec.core, offline, spec.lp_policy,
                            spec.detector, off);

  Row row;
  std::vector<core::WorkerResult> cold_results;
  cold_results.reserve(jobs.size());
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& job : jobs) cold_results.push_back(cold.process(job));
  const auto t1 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (!results_match(fast.process(jobs[i]), cold_results[i])) {
      row.identical = false;
    }
  }
  const auto t2 = std::chrono::steady_clock::now();
  const double cold_s = std::chrono::duration<double>(t1 - t0).count();
  const double fast_s = std::chrono::duration<double>(t2 - t1).count();
  row.cold_ips = cold_s > 0 ? jobs.size() / cold_s : 0;
  row.fast_ips = fast_s > 0 ? jobs.size() / fast_s : 0;
  row.speedup = row.cold_ips > 0 ? row.fast_ips / row.cold_ips : 0;
  row.resumed = fast.checkpoint_stats().resumed;
  row.cycles_skipped = fast.checkpoint_stats().resumed_cycles;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace specure;
  bench::BenchJson json(argc, argv, "checkpoint");
  bench::header("Checkpointed incremental simulation (default MiniBOOM)");

  core::CampaignSpec spec;  // default preset supplies core/detector config
  const core::OfflineResult offline =
      core::run_offline_phase(spec.core, spec.pdlc);

  constexpr std::size_t kParents = 8;
  constexpr std::size_t kChildren = 25;
  bench::note("workloads: " + std::to_string(kParents) + " parents x " +
              std::to_string(kChildren) + " tail-mutant children each; "
              "checkpoint rows re-run the identical job stream");

  std::uint64_t iter = 0;
  util::Rng rng(7);

  std::vector<fuzz::FuzzJob> corpus_jobs;
  {
    fuzz::FuzzerOptions options;
    fuzz::Fuzzer fuzzer(options, 1);
    for (std::size_t i = 0; i < kParents; ++i) {
      const riscv::Program p = fuzzer.next();
      push_family(corpus_jobs, p, kChildren,
                  p.code.size() / 8 ? p.code.size() / 8 : 1, rng, iter);
    }
  }
  std::vector<fuzz::FuzzJob> gadget_jobs;
  for (std::size_t i = 0; i < kParents; ++i) {
    push_family(gadget_jobs, gadget_parent(rng, 300, 24), kChildren, 24, rng,
                iter);
  }

  std::printf("  %-12s %-10s %-10s %-9s %-9s %-14s %s\n", "workload",
              "cold i/s", "ckpt i/s", "speedup", "resumed", "cycles-skipped",
              "identical");
  bool all_identical = true;
  double gadget_speedup = 0;
  const auto report = [&](const char* name, const char* key,
                          const std::vector<fuzz::FuzzJob>& jobs) {
    const Row row = run_workload(jobs, spec, offline);
    std::printf("  %-12s %-10.1f %-10.1f %-9.2f %-9llu %-14llu %s\n", name,
                row.cold_ips, row.fast_ips, row.speedup,
                static_cast<unsigned long long>(row.resumed),
                static_cast<unsigned long long>(row.cycles_skipped),
                row.identical ? "yes" : "NO");
    json.metric(std::string("iters_per_sec_cold_") + key, row.cold_ips);
    json.metric(std::string("iters_per_sec_checkpoint_") + key, row.fast_ips);
    json.metric(std::string("speedup_") + key, row.speedup);
    all_identical = all_identical && row.identical;
    return row.speedup;
  };
  report("corpus-tail", "corpus", corpus_jobs);
  gadget_speedup = report("gadget-tail", "gadget", gadget_jobs);

  bench::note("headline: gadget-tail (mutation-local) speedup; the "
              "acceptance floor is 2x");
  if (!all_identical) {
    std::printf("  !! checkpoint results diverged from the cold path\n");
    return 1;
  }
  if (gadget_speedup < 2.0) {
    std::printf("  !! gadget-tail speedup %.2fx below the 2x floor\n",
                gadget_speedup);
  }
  return 0;
}
