// Campaign-as-a-service overheads: what the daemon layer costs on top of
// a bare Session, in three numbers.
//
//   submit-to-first-event   wall-clock from the submit frame leaving the
//                           client to the first observer event arriving
//                           on an events stream (daemon pickup + Session
//                           construction + first merge).
//   events streamed         frames/sec a client drains from a finished
//                           campaign's event log over the socket.
//   state-write overhead    campaign wall-clock with the durable-state
//                           sink off vs cadence 5s / 1s / every-boundary
//                           (the daemon's slice default is every slice
//                           boundary; every-boundary is the worst case).
//
// The durability contract itself (resume bit-identity) is tested in
// tests/serve_test.cpp; this bench only prices it.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>

#include "bench_common.hpp"
#include "core/campaign_spec.hpp"
#include "core/session.hpp"
#include "serve/campaign_state.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace {

using namespace specure;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

core::CampaignSpec bench_spec(std::uint64_t iterations,
                              std::uint64_t progress_interval) {
  core::CampaignSpec spec;  // default preset
  spec.rng_seed = 7;
  spec.batch_size = 8;
  spec.jobs = 1;
  spec.budget.iterations = iterations;
  spec.progress_interval = progress_interval;
  return spec;
}

/// Campaign wall-clock with a state sink at `interval` (negative = no
/// sink at all).
double timed_campaign(const std::string& state_path, double interval) {
  core::CampaignSpec spec = bench_spec(600, 0);
  spec.jobs = 4;
  core::Session session(spec);
  if (interval >= 0) {
    session.on_frontier(
        [&](const core::CampaignFrontier& f) {
          serve::save_state_file(state_path, spec, f);
        },
        interval);
  }
  const Clock::time_point start = Clock::now();
  session.run();
  return seconds_since(start);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchJson json(argc, argv, "serve");

  const std::string root =
      (std::filesystem::temp_directory_path() / "specure_bench_serve")
          .string();
  std::filesystem::remove_all(root);

  bench::header("serve daemon: submit-to-first-event, event streaming");
  serve::ServerOptions options;
  options.socket_path = root + ".sock";
  options.store_root = root;
  options.workers = 2;
  options.slice_iterations = 32;
  serve::Server server(options);
  std::thread serving([&server] { server.run(); });

  // Submit-to-first-event: open the event stream the moment the id comes
  // back, then wait for the first frame.
  const core::CampaignSpec spec = bench_spec(2000, 1);
  const Clock::time_point submit_start = Clock::now();
  std::string id;
  {
    serve::Client client(options.socket_path);
    const serve::Json reply =
        client.request("{\"verb\": \"submit\", \"spec\": \"" +
                       serve::escape_json(spec.to_toml()) + "\"}");
    id = reply.find("id")->text;
  }
  double first_event_seconds = 0;
  {
    serve::Client client(options.socket_path);
    client.send("{\"verb\": \"events\", \"id\": \"" + id +
                "\", \"follow\": true}");
    std::string frame;
    if (client.next_raw(frame)) first_event_seconds = seconds_since(submit_start);
  }
  std::printf("  submit -> first event:  %7.1f ms\n",
              first_event_seconds * 1e3);
  json.metric("submit_to_first_event_ms", first_event_seconds * 1e3);

  // Let the campaign finish, then drain the whole log cold.
  for (;;) {
    serve::Client client(options.socket_path);
    const serve::Json reply =
        client.request("{\"verb\": \"status\", \"id\": \"" + id + "\"}");
    if (reply.find("status")->text != "running") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::size_t frames = 0;
  double stream_seconds = 0;
  {
    serve::Client client(options.socket_path);
    const Clock::time_point start = Clock::now();
    client.send("{\"verb\": \"events\", \"id\": \"" + id +
                "\", \"follow\": false}");
    std::string frame;
    while (client.next_raw(frame)) {
      ++frames;
      const serve::Json parsed = serve::parse_json(frame);
      const serve::Json* event = parsed.find("event");
      if (event != nullptr && event->text == "end") break;
    }
    stream_seconds = seconds_since(start);
  }
  const double events_per_sec =
      stream_seconds > 0 ? static_cast<double>(frames) / stream_seconds : 0;
  std::printf("  events streamed:        %zu frames in %.3fs (%.0f/sec)\n",
              frames, stream_seconds, events_per_sec);
  json.metric("events_streamed", static_cast<double>(frames));
  json.metric("events_per_sec", events_per_sec);

  server.shutdown();
  serving.join();

  bench::header("durable state: write overhead vs state_interval");
  const std::string state_path = root + ".state.bin";
  timed_campaign(state_path, -1);  // warm-up (page cache, allocator) untimed
  struct Row {
    const char* label;
    double interval;  ///< negative = sink disabled
    const char* key;
  };
  const Row rows[] = {
      {"off", -1, "campaign_seconds_state_off"},
      {"5s", 5, "campaign_seconds_state_5s"},
      {"1s", 1, "campaign_seconds_state_1s"},
      {"boundary", 0, "campaign_seconds_state_every_boundary"},
  };
  double baseline = 0;
  for (const Row& row : rows) {
    const double seconds = timed_campaign(state_path, row.interval);
    if (row.interval < 0) baseline = seconds;
    const double overhead =
        baseline > 0 ? (seconds / baseline - 1.0) * 100.0 : 0;
    std::printf("  state_interval %-9s %6.3fs  (%+5.1f%%)\n", row.label,
                seconds, overhead);
    json.metric(row.key, seconds);
  }
  bench::note("every-boundary is the worst case; the serve daemon writes "
              "once per slice");

  std::filesystem::remove_all(root);
  std::filesystem::remove(root + ".sock");
  std::filesystem::remove(state_path);
  return 0;
}
