// E6 (§4.2 detection-time claims):
//   1. Spectre time-to-detection: Specure with the special transient-
//      window seeds, Specure without them, and the SpecDoctor-like
//      baseline (paper: 49 min / 1.5 h vs 31 h => 20x faster);
//   2. per-iteration runtime overhead of Specure's snapshot processing +
//      coverage computation vs a TheHuzz-style code-coverage-only loop
//      (paper: 82% overhead);
//   3. emulated-vulnerability detection effort ordering (paper: Zenbleed
//      after 4.5 h, (M)WAIT after 14 h — the hardest).
#include <chrono>

#include "baseline/specdoctor.hpp"
#include "bench_common.hpp"
#include "core/mst.hpp"
#include "fuzz/corpus.hpp"

using namespace specure;

namespace {

std::uint64_t specure_spectre_iters(bool special_seeds, std::uint64_t seed) {
  core::CampaignSpec spec = core::CampaignSpec::preset("cache-monitor");
  spec.fuzzer.use_special_seeds = special_seeds;
  spec.rng_seed = seed;
  spec.budget.iterations = 30000;
  spec.batch_size = 1;  // per-iteration feedback, as in the paper's loop
  const auto result = bench::run_spec(spec, bench::stop_on("cache-residue"));
  return bench::first_detection(result, "cache-residue");
}

/// Returns the first-detection iteration, or 0 when not found in budget.
std::uint64_t specdoctor_spectre_iters(std::uint64_t seed,
                                       std::uint64_t budget) {
  baseline::SpecdoctorOptions opts;
  opts.rng_seed = seed;
  opts.fuzzer.use_special_seeds = false;  // published design: random seeds
  baseline::SpecdoctorFuzzer fuzzer(opts);
  std::uint64_t found = 0;
  fuzzer.run(budget, [&](const baseline::SpecdoctorResult& r) {
    if (!r.findings.empty()) {
      found = r.findings.front().iteration;
      return true;
    }
    return false;
  });
  return found;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchJson json(argc, argv, "detection_time");
  bench::header("E6a: Spectre time-to-detection (3 seeds each)");
  const std::uint64_t sd_budget = 6000;
  std::uint64_t with_seeds = 0, without_seeds = 0, specdoctor = 0;
  bool sd_found_all = true;
  for (std::uint64_t s : {11, 12, 13}) {
    with_seeds += specure_spectre_iters(true, s);
    without_seeds += specure_spectre_iters(false, s);
    const std::uint64_t sd = specdoctor_spectre_iters(s, sd_budget);
    sd_found_all &= sd != 0;
    specdoctor += sd != 0 ? sd : sd_budget;  // lower bound when not found
  }
  with_seeds /= 3;
  without_seeds /= 3;
  specdoctor /= 3;
  // SpecDoctor runs two simulations per iteration: compare simulation
  // effort, not loop counts.
  const double sd_effort = 2.0 * static_cast<double>(specdoctor);
  std::printf("  %-34s mean-iters   sim-runs\n", "tool");
  std::printf("  %-34s %-12llu %.0f\n", "Specure (with special seeds)",
              (unsigned long long)with_seeds, (double)with_seeds);
  std::printf("  %-34s %-12llu %.0f\n", "Specure (random seeds only)",
              (unsigned long long)without_seeds, (double)without_seeds);
  std::printf("  %-34s %s%-11llu %s%.0f\n", "SpecDoctor-like (2 sims/iter)",
              sd_found_all ? "" : ">", (unsigned long long)specdoctor,
              sd_found_all ? "" : ">", sd_effort);
  json.metric("spectre_iters_with_seeds", static_cast<double>(with_seeds));
  json.metric("spectre_iters_without_seeds",
              static_cast<double>(without_seeds));
  if (without_seeds != 0) {
    std::printf("\n  Specure explores %s%.1fx faster than the differential "
                "baseline (paper: 20x)\n", sd_found_all ? "" : ">=",
                sd_effort / static_cast<double>(without_seeds));
    std::printf("  special seeds give a further %.1fx (paper: 1.5h -> 49min)\n",
                static_cast<double>(without_seeds) /
                    std::max<std::uint64_t>(with_seeds, 1));
  }
  if (!sd_found_all) {
    bench::note("SpecDoctor-like baseline did not find Spectre within its");
    bench::note("budget on some seeds (paper: it needed 31h) - values are");
    bench::note("lower bounds.");
  }

  bench::header("E6b: runtime overhead of snapshot processing + LP coverage");
  {
    // TheHuzz-style loop: simulate + merge code coverage, nothing else.
    fuzz::FuzzerOptions fopts;
    fuzz::Fuzzer fuzzer(fopts, 33);
    sim::Simulator simulator{sim::CoreConfig{}};
    sim::CoverageRecorder cov;
    const int iters = 400;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      const auto run = simulator.run(fuzzer.next());
      if (cov.merge(run.coverage) > 0) {
        // interesting
      }
    }
    const double base_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    core::CampaignSpec spec;
    spec.rng_seed = 33;
    spec.budget.iterations = iters;
    spec.batch_size = 1;  // match the serial TheHuzz-style loop above
    core::Session session(spec);
    const auto t1 = std::chrono::steady_clock::now();
    session.run();
    const double full_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t1)
            .count();
    std::printf("  TheHuzz-style loop: %.2fs for %d iters\n", base_s, iters);
    std::printf("  Specure full pipeline: %.2fs for %d iters\n", full_s,
                iters);
    std::printf("  overhead: %.0f%% (paper: 82%% over TheHuzz)\n",
                100.0 * (full_s - base_s) / base_s);
  }

  bench::header("E6c: emulated-vulnerability detection effort (iterations)");
  {
    core::CampaignSpec spec = core::CampaignSpec::preset("zenbleed");
    spec.rng_seed = 1;
    spec.budget.iterations = 30000;
    spec.batch_size = 1;
    const auto r = bench::run_spec(spec, bench::stop_on("core.rf."));
    std::printf("  Zenbleed e.m.: %llu iterations (paper: 4.5h)\n",
                (unsigned long long)bench::first_detection(r, "core.rf."));
  }
  {
    core::CampaignSpec spec = core::CampaignSpec::preset("mwait");
    spec.rng_seed = 1;
    spec.budget.iterations = 60000;
    spec.batch_size = 1;
    const auto r = bench::run_spec(spec, bench::stop_on("mwait_timer"));
    const auto it = bench::first_detection(r, "mwait_timer");
    if (it != 0) {
      std::printf("  (M)WAIT e.m.:  %llu iterations (paper: 14h, its "
                  "longest campaign)\n",
                  (unsigned long long)it);
    } else {
      std::printf("  (M)WAIT e.m.:  not found within 60000 iterations\n");
    }
  }
  return 0;
}
