// E1/E2 (§4.1): Offline Phase statistics — IFG size and extraction time,
// PDLC count and extraction time — plus the D2 ablation (reverse
// "skewed-aware" search vs forward DFS enumeration) and the external-RTL
// front-end path on MiniBOOM's exported structural Verilog.
//
// Paper reference points (BOOM): |R| = 162,631 signals, |F| = 428,245
// connections, IFG in ~9 min; 9,048 PDLCs via DFS in ~3 min. MiniBOOM is
// proportionally smaller; shapes to check: PDLC count in the thousands,
// reverse search faster than forward enumeration.
#include <chrono>

#include "bench_common.hpp"
#include "core/offline.hpp"
#include "sim/structure.hpp"

using namespace specure;

namespace {

double time_pdlc(const ift::Ifg& ifg, bool reverse, std::size_t& count) {
  ift::PdlcOptions opts;
  opts.reverse = reverse;
  const auto t0 = std::chrono::steady_clock::now();
  const auto list = ift::extract_pdlc(ifg, opts);
  count = list.size();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void report_config(const char* name, const sim::CoreConfig& cfg,
                   const char* key = "", bench::BenchJson* json = nullptr) {
  const core::OfflineResult off = core::run_offline_phase(cfg);
  std::printf("  %-22s |R|=%6zu  |F|=%6zu  ifg=%.3fs  PDLC=%6zu  pdlc=%.3fs\n",
              name, off.ifg.node_count(), off.ifg.edge_count(),
              off.ifg_seconds, off.pdlc.size(), off.pdlc_seconds);
  if (json != nullptr) {
    json->metric(std::string(key) + "_ifg_seconds", off.ifg_seconds);
    json->metric(std::string(key) + "_pdlc_seconds", off.pdlc_seconds);
    json->metric(std::string(key) + "_pdlc_count",
                 static_cast<double>(off.pdlc.size()));
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchJson json(argc, argv, "offline_phase");
  bench::header("E1/E2: Offline Phase (paper 4.1)");
  bench::note("paper/BOOM: |R|=162631 |F|=428245 (~9 min); PDLC=9048 (~3 min)");

  sim::CoreConfig plain;
  sim::CoreConfig mwait = plain;
  mwait.vuln.mwait_emulation = true;
  sim::CoreConfig zenbleed = plain;
  zenbleed.vuln.zenbleed_emulation = true;
  sim::CoreConfig both = plain;
  both.vuln.mwait_emulation = true;
  both.vuln.zenbleed_emulation = true;

  report_config("MiniBOOM", plain, "plain", &json);
  report_config("MiniBOOM+mwait", mwait);
  report_config("MiniBOOM+zenbleed", zenbleed);
  report_config("MiniBOOM+both", both, "full", &json);

  bench::header("D2 ablation: reverse (skewed-aware) vs forward DFS");
  const ift::Ifg ifg = sim::build_ifg(both);
  std::size_t rev_count = 0, fwd_count = 0;
  double rev_s = 0, fwd_s = 0;
  for (int rep = 0; rep < 5; ++rep) {
    rev_s += time_pdlc(ifg, /*reverse=*/true, rev_count);
    fwd_s += time_pdlc(ifg, /*reverse=*/false, fwd_count);
  }
  std::printf("  reverse: %6zu channels in %.4fs (x5 reps)\n", rev_count,
              rev_s);
  std::printf("  forward: %6zu channels in %.4fs (x5 reps)  speedup=%.2fx\n",
              fwd_count, fwd_s, fwd_s / (rev_s > 0 ? rev_s : 1e-9));
  json.metric("reverse_vs_forward_speedup", fwd_s / (rev_s > 0 ? rev_s : 1e-9));

  bench::header("External-RTL path (Pyverilog-substitute front-end)");
  const std::string verilog = sim::emit_structural_verilog(both);
  const auto t0 = std::chrono::steady_clock::now();
  const core::OfflineResult rtl_off = core::run_offline_phase_rtl(
      verilog, "core", ift::ArchRegDb::riscv());
  const double total =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf(
      "  verilog=%zu bytes  parse+elab+ifg=%.3fs  pdlc=%.3fs  total=%.3fs\n",
      verilog.size(), rtl_off.ifg_seconds, rtl_off.pdlc_seconds, total);
  std::printf("  |R|=%zu |F|=%zu PDLC=%zu (structural path: PDLC=%zu)\n",
              rtl_off.ifg.node_count(), rtl_off.ifg.edge_count(),
              rtl_off.pdlc.size(), rev_count);
  return 0;
}
